// Reactor-level integration tests: transport resilience (fd exhaustion,
// mid-frame stalls), adversarial framing against the incremental decoder,
// request pipelining, the TCP transport, and tiered load shedding. These
// poke the server through raw sockets on purpose — the Client helper is too
// polite to produce the byte patterns the reactor has to survive.
#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/sweep.hpp"
#include "obs/event_log.hpp"
#include "report/experiment.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "tree/binary.hpp"
#include "tree/compress.hpp"
#include "workloads/test_patterns.hpp"

namespace pprophet::serve {
namespace {

std::string sample_pptb() {
  workloads::Test1Params p;
  p.i_max = 16;
  p.lock1_prob = 0.5;
  tree::ProgramTree t = workloads::run_test1(p);
  tree::compress(t);
  return tree::to_binary(tree::pack(t));
}

int raw_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void send_all(int fd, const char* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    ASSERT_GT(w, 0) << std::strerror(errno);
    sent += static_cast<std::size_t>(w);
  }
}

JsonValue op_req(const char* op) {
  JsonValue r;
  r.set("op", JsonValue(op));
  return r;
}

std::uint64_t counter_value(const obs::MetricsSnapshot& snap,
                            const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  return 0;
}

class ReactorTest : public ::testing::Test {
 protected:
  ServerConfig base_config(const char* tag) {
    ServerConfig cfg;
    cfg.socket_path = testing::TempDir() + "pp_reactor_" + tag + ".sock";
    cfg.workers = 2;
    cfg.sweep_workers = 1;
    cfg.debug_ops = true;
    return cfg;
  }
};

// The regression test for the silent-death bug: accept() failing with
// EMFILE used to `break` out of the accept loop, leaving the daemon alive
// but deaf forever. The reactor must instead count the error, back off, and
// resume accepting once descriptors free up — the client that connected
// during the outage (sitting in the listen backlog) still gets served.
TEST_F(ReactorTest, FdExhaustionRecoveryAfterAcceptFailure) {
  ServerConfig cfg = base_config("fdlimit");
  Server server(cfg);
  server.start();

  Client warm;
  warm.connect(cfg.socket_path);
  ASSERT_TRUE(warm.call("ping").at("ok").as_bool());

  // The victim's socket is created before the starvation so its connect()
  // can still run while the process has no descriptors left.
  const int victim = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(victim, 0);

  rlimit orig{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &orig), 0);
  std::vector<int> hogs;
  const auto release = [&] {
    for (const int fd : hogs) ::close(fd);
    hogs.clear();
    ::setrlimit(RLIMIT_NOFILE, &orig);
  };

  // Drop the soft limit near current usage, then burn every remaining slot.
  rlimit low = orig;
  low.rlim_cur = 64;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &low), 0);
  for (;;) {
    const int fd = ::dup(0);
    if (fd < 0) break;
    hogs.push_back(fd);
  }
  ASSERT_EQ(errno, EMFILE);

  // connect() succeeds while the listen backlog has room even though the
  // server's accept4() now fails with EMFILE.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, cfg.socket_path.c_str(),
               sizeof addr.sun_path - 1);
  if (::connect(victim, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    release();
    FAIL() << "backlog connect failed: " << std::strerror(errno);
  }
  write_frame(victim, json_dump(op_req("ping")));

  // The old code exits the accept loop here; the fixed one keeps counting.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.stats().accept_errors == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const std::uint64_t during_outage = server.stats().accept_errors;
  release();
  if (during_outage == 0) FAIL() << "accept error never surfaced";

  // Descriptors are back: the backoff expires, the listener re-arms, the
  // backlogged connection is accepted, and its ping is answered. Bound the
  // wait so a server that stopped accepting forever (the old `break`
  // behavior) fails the test instead of hanging it.
  timeval tv{};
  tv.tv_sec = 10;
  ASSERT_EQ(::setsockopt(victim, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv), 0);
  std::string payload;
  ASSERT_TRUE(read_frame(victim, payload));
  EXPECT_TRUE(json_parse(payload).at("ok").as_bool()) << payload;
  ::close(victim);

  // A fresh client connects fine after the outage, and the counter shows
  // up both in the snapshot and the stats op's transport section.
  Client late;
  late.connect(cfg.socket_path);
  const JsonValue stats = late.call("stats");
  EXPECT_GE(stats.at("stats").at("transport").at("accept_errors").as_u64(),
            1u);
  EXPECT_GE(server.stats().accept_errors, 1u);
  server.stop();
}

// A peer that wedges mid-frame (header sent, payload never finished) must
// be dropped after io_timeout_ms — counted, and logged at Warn severity so
// it bypasses log sampling — while a connection idling *between* frames
// stays open indefinitely.
TEST_F(ReactorTest, MidFrameStallIsTimedOutAndLogged) {
  std::ostringstream sink;
  obs::EventLog log(sink);
  ServerConfig cfg = base_config("stall");
  cfg.io_timeout_ms = 100;
  cfg.event_log = &log;
  Server server(cfg);
  server.start();

  // Idle-between-frames control: older than the timeout, still served.
  Client idle;
  idle.connect(cfg.socket_path);
  ASSERT_TRUE(idle.call("ping").at("ok").as_bool());

  const int fd = raw_connect(cfg.socket_path);
  ASSERT_GE(fd, 0);
  // Header claims 64 bytes; send only 8 and stall.
  const unsigned char header[4] = {64, 0, 0, 0};
  send_all(fd, reinterpret_cast<const char*>(header), sizeof header);
  send_all(fd, "partial!", 8);

  std::string payload;
  EXPECT_FALSE(read_frame(fd, payload));  // server hangs up on us
  ::close(fd);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.stats().io_timeouts == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(server.stats().io_timeouts, 1u);
  EXPECT_NE(sink.str().find("io_timeout"), std::string::npos) << sink.str();

  // The stalled peer did not take the idle connection down with it.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  EXPECT_TRUE(idle.call("ping").at("ok").as_bool());
  server.stop();
}

// One byte per write: the decoder must assemble the frame incrementally
// across however many reads it takes.
TEST_F(ReactorTest, ByteAtATimeDribbleAssemblesOneFrame) {
  Server server(base_config("dribble"));
  server.start();
  const int fd = raw_connect(server.config().socket_path);
  ASSERT_GE(fd, 0);

  const std::string body = json_dump(op_req("ping"));
  const std::string frame = encode_frame(body);
  for (const char ch : frame) {
    send_all(fd, &ch, 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::string payload;
  ASSERT_TRUE(read_frame(fd, payload));
  EXPECT_TRUE(json_parse(payload).at("ok").as_bool()) << payload;
  ::close(fd);
  server.stop();
}

// The opposite extreme: dozens of complete frames arriving in a single
// read. Every one is answered, in order.
TEST_F(ReactorTest, ManyPipelinedFramesInOneWrite) {
  Server server(base_config("burst"));
  server.start();
  const int fd = raw_connect(server.config().socket_path);
  ASSERT_GE(fd, 0);

  // Alternate a valid op with an unknown one so reordering would be
  // visible in the ok/op fields, not just dropped frames.
  constexpr int kFrames = 32;
  std::string burst;
  for (int i = 0; i < kFrames; ++i) {
    burst += encode_frame(json_dump(op_req(i % 2 == 0 ? "ping" : "no_such")));
  }
  send_all(fd, burst.data(), burst.size());

  for (int i = 0; i < kFrames; ++i) {
    std::string payload;
    ASSERT_TRUE(read_frame(fd, payload)) << "response " << i;
    const JsonValue resp = json_parse(payload);
    EXPECT_EQ(resp.at("ok").as_bool(), i % 2 == 0) << payload;
    EXPECT_EQ(resp.at("op").as_string(), i % 2 == 0 ? "ping" : "no_such");
  }
  ::close(fd);
  server.stop();
}

// The nastiest split point: the 4-byte length prefix itself arrives in two
// halves, with the payload trickling after in two more pieces.
TEST_F(ReactorTest, FrameSplitInsideHeaderBoundary) {
  Server server(base_config("split"));
  server.start();
  const int fd = raw_connect(server.config().socket_path);
  ASSERT_GE(fd, 0);

  const std::string frame = encode_frame(json_dump(op_req("ping")));
  ASSERT_GT(frame.size(), 6u);
  const std::size_t cuts[3] = {2, 4, frame.size() / 2};
  std::size_t at = 0;
  for (const std::size_t cut : cuts) {
    send_all(fd, frame.data() + at, cut - at);
    at = cut;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  send_all(fd, frame.data() + at, frame.size() - at);

  std::string payload;
  ASSERT_TRUE(read_frame(fd, payload));
  EXPECT_TRUE(json_parse(payload).at("ok").as_bool()) << payload;
  ::close(fd);
  server.stop();
}

// A header declaring more than kMaxFrameBytes is rejected at header time —
// the connection drops without the server ever buffering the body.
TEST_F(ReactorTest, OversizeFrameDropsConnection) {
  Server server(base_config("oversize"));
  server.start();
  const int fd = raw_connect(server.config().socket_path);
  ASSERT_GE(fd, 0);

  const std::uint32_t huge = kMaxFrameBytes + 1;
  unsigned char header[4] = {
      static_cast<unsigned char>(huge & 0xff),
      static_cast<unsigned char>((huge >> 8) & 0xff),
      static_cast<unsigned char>((huge >> 16) & 0xff),
      static_cast<unsigned char>((huge >> 24) & 0xff)};
  send_all(fd, reinterpret_cast<const char*>(header), sizeof header);

  std::string payload;
  EXPECT_FALSE(read_frame(fd, payload));  // dropped, no response
  ::close(fd);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (counter_value(server.stats().metrics, "serve.protocol_errors") == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(counter_value(server.stats().metrics, "serve.protocol_errors"),
            1u);
  // The server survives for well-formed clients.
  Client c;
  c.connect(server.config().socket_path);
  EXPECT_TRUE(c.call("ping").at("ok").as_bool());
  server.stop();
}

// Pipelined heavy + light requests on one connection: responses come back
// in request order (the reactor holds a finished ping behind an unfinished
// sweep), and the sweep payloads are bit-identical to in-process
// core::sweep on the same tree.
TEST_F(ReactorTest, PipelinedSweepsOrderedAndBitIdentical) {
  ServerConfig cfg = base_config("pipeline");
  cfg.workers = 2;
  Server server(cfg);
  server.start();
  const std::string bytes = sample_pptb();

  Client uploader;
  uploader.connect(cfg.socket_path);
  const std::string key = uploader.upload(bytes);

  core::SweepGrid grid;
  grid.methods = {core::Method::FastForward, core::Method::Synthesizer};
  grid.paradigms = {core::Paradigm::OpenMP};
  grid.schedules = {runtime::OmpSchedule::StaticCyclic};
  grid.chunks = {1};
  grid.thread_counts = {2, 4};
  grid.memory_models = {false};
  grid.base = report::paper_options(grid.methods.front());
  grid.base.machine.cores = 12;
  const core::SweepResult expected =
      core::sweep(tree::unpack(tree::from_binary(bytes)), grid);

  JsonValue sweep_req = op_req("sweep");
  sweep_req.set("key", JsonValue(key));
  sweep_req.set("methods",
                JsonValue(JsonValue::Array{JsonValue("ff"), JsonValue("syn")}));
  sweep_req.set("schedules",
                JsonValue(JsonValue::Array{JsonValue("static1")}));
  sweep_req.set("threads",
                JsonValue(JsonValue::Array{JsonValue(2), JsonValue(4)}));
  sweep_req.set("cores", JsonValue(12));

  const int fd = raw_connect(cfg.socket_path);
  ASSERT_GE(fd, 0);
  const char* order[5] = {"sweep", "ping", "sweep", "ping", "sweep"};
  std::string burst;
  for (const char* op : order) {
    burst += encode_frame(
        json_dump(std::string(op) == "sweep" ? sweep_req : op_req(op)));
  }
  send_all(fd, burst.data(), burst.size());

  for (const char* op : order) {
    std::string payload;
    ASSERT_TRUE(read_frame(fd, payload));
    const JsonValue resp = json_parse(payload);
    ASSERT_TRUE(resp.at("ok").as_bool()) << payload;
    EXPECT_EQ(resp.at("op").as_string(), op);
    if (std::string(op) != "sweep") continue;
    const JsonValue::Array& cells = resp.at("result").at("cells").as_array();
    ASSERT_EQ(cells.size(), expected.cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const core::SweepCell& want = expected.cells[i];
      EXPECT_EQ(cells[i].at("serial_cycles").as_u64(),
                want.estimate.serial_cycles);
      EXPECT_EQ(cells[i].at("parallel_cycles").as_u64(),
                want.estimate.parallel_cycles);
      EXPECT_EQ(cells[i].at("speedup").as_double(), want.estimate.speedup);
    }
  }
  ::close(fd);
  server.stop();
}

// The TCP transport speaks the identical frame protocol: the same sweep
// issued over unix and over 127.0.0.1 returns byte-equal result payloads,
// both bit-identical to the in-process computation.
TEST_F(ReactorTest, TcpTransportBitIdenticalToUnixAndInProcess) {
  ServerConfig cfg = base_config("tcp");
  cfg.listen_tcp = "127.0.0.1:0";  // ephemeral; resolved via tcp_port()
  Server server(cfg);
  server.start();
  ASSERT_NE(server.tcp_port(), 0);
  ASSERT_EQ(server.endpoints().size(), 2u);

  const std::string bytes = sample_pptb();
  core::SweepGrid grid;
  grid.methods = {core::Method::Synthesizer};
  grid.paradigms = {core::Paradigm::OpenMP};
  grid.schedules = {runtime::OmpSchedule::StaticCyclic,
                    runtime::OmpSchedule::Dynamic};
  grid.chunks = {1};
  grid.thread_counts = {2, 4, 8};
  grid.memory_models = {false};
  grid.base = report::paper_options(grid.methods.front());
  grid.base.machine.cores = 12;
  const core::SweepResult expected =
      core::sweep(tree::unpack(tree::from_binary(bytes)), grid);

  Client over_unix, over_tcp;
  over_unix.connect(cfg.socket_path);
  over_tcp.connect_tcp("127.0.0.1:" + std::to_string(server.tcp_port()));

  const std::string key_unix = over_unix.upload(bytes);
  const std::string key_tcp = over_tcp.upload(bytes);
  EXPECT_EQ(key_unix, key_tcp);  // content-addressed: same digest

  JsonValue req = op_req("sweep");
  req.set("key", JsonValue(key_tcp));
  req.set("methods", JsonValue(JsonValue::Array{JsonValue("syn")}));
  req.set("schedules", JsonValue(JsonValue::Array{JsonValue("static1"),
                                                  JsonValue("dynamic")}));
  req.set("threads", JsonValue(JsonValue::Array{JsonValue(2), JsonValue(4),
                                                JsonValue(8)}));
  req.set("cores", JsonValue(12));

  const JsonValue r_tcp = over_tcp.call(req);
  const JsonValue r_unix = over_unix.call(req);
  ASSERT_TRUE(r_tcp.at("ok").as_bool()) << json_dump(r_tcp);
  ASSERT_TRUE(r_unix.at("ok").as_bool()) << json_dump(r_unix);
  EXPECT_EQ(r_tcp.at("result"), r_unix.at("result"));

  const JsonValue::Array& cells = r_tcp.at("result").at("cells").as_array();
  ASSERT_EQ(cells.size(), expected.cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].at("serial_cycles").as_u64(),
              expected.cells[i].estimate.serial_cycles);
    EXPECT_EQ(cells[i].at("parallel_cycles").as_u64(),
              expected.cells[i].estimate.parallel_cycles);
    EXPECT_EQ(cells[i].at("speedup").as_double(),
              expected.cells[i].estimate.speedup);
  }
  server.stop();
}

// Tiered shedding: with the queue at its high watermark, expensive ops are
// rejected with tier="expensive" while cheap ops are still admitted; once
// the queue is truly full everything sheds with tier="full".
TEST_F(ReactorTest, LoadSheddingShedsExpensiveOpsFirst) {
  ServerConfig cfg = base_config("shed");
  cfg.workers = 1;
  cfg.queue_limit = 4;  // high watermark = 2
  Server server(cfg);
  server.start();

  const auto sleep_req = [](std::uint64_t ms) {
    JsonValue r = op_req("sleep");
    r.set("ms", JsonValue(ms));
    return r;
  };
  // Cheap filler: predict on an unknown key costs a worker microseconds
  // but occupies a queue slot while the worker is parked.
  const auto cheap_req = [] {
    JsonValue r = op_req("predict");
    r.set("key", JsonValue(std::string(32, '0')));
    return r;
  };

  Client parked, q1, q2, probe, f1, f2, full_probe;
  for (Client* c : {&parked, &q1, &q2, &probe, &f1, &f2, &full_probe}) {
    c->connect(cfg.socket_path);
  }

  // Park the worker, then stack the queue to the high watermark.
  JsonValue parked_resp, q1_resp, q2_resp, f1_resp, f2_resp;
  std::thread t0([&] { parked_resp = parked.call(sleep_req(900)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  std::thread t1([&] { q1_resp = q1.call(sleep_req(0)); });
  std::thread t2([&] { q2_resp = q2.call(sleep_req(0)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  // Queue depth 2 = watermark: the expensive probe sheds...
  const JsonValue shed = probe.call(sleep_req(0));
  EXPECT_FALSE(shed.at("ok").as_bool());
  EXPECT_EQ(shed.at("error").as_string(), kErrOverloaded);
  EXPECT_EQ(shed.at("tier").as_string(), "expensive");
  // ...but cheap ops are still admitted until the queue is actually full.
  std::thread t3([&] { f1_resp = f1.call(cheap_req()); });
  std::thread t4([&] { f2_resp = f2.call(cheap_req()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  // Depth 4 = limit: now even a cheap op sheds, with the "full" tier tag.
  const JsonValue full = full_probe.call(cheap_req());
  EXPECT_FALSE(full.at("ok").as_bool());
  EXPECT_EQ(full.at("error").as_string(), kErrOverloaded);
  EXPECT_EQ(full.at("tier").as_string(), "full");

  for (std::thread* t : {&t0, &t1, &t2, &t3, &t4}) t->join();
  EXPECT_TRUE(parked_resp.at("ok").as_bool());
  EXPECT_TRUE(q1_resp.at("ok").as_bool());
  EXPECT_TRUE(q2_resp.at("ok").as_bool());
  // The cheap fillers ran once the worker freed up (not_found, not shed).
  EXPECT_EQ(f1_resp.at("error").as_string(), kErrNotFound);
  EXPECT_EQ(f2_resp.at("error").as_string(), kErrNotFound);

  const obs::MetricsSnapshot snap = server.stats().metrics;
  EXPECT_GE(counter_value(snap, "serve.shed.expensive"), 1u);
  EXPECT_GE(counter_value(snap, "serve.shed.full"), 1u);
  EXPECT_GE(server.stats().overloaded, 2u);
  server.stop();
}

}  // namespace
}  // namespace pprophet::serve
