// Integration tests for the serve-path tail-latency telemetry: the v2
// `stats` request's metrics payload, the exact stage-sum reconciliation
// invariant (request_trace.hpp), cache-split compute histograms, the JSONL
// request log, and stats availability during a graceful drain. Runs under
// PPROPHET_SANITIZE=thread via the `server` / `concurrency` ctest labels.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/event_log.hpp"
#include "obs/histogram.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "tree/binary.hpp"
#include "tree/compress.hpp"
#include "workloads/test_patterns.hpp"

namespace pprophet::serve {
namespace {

std::string sample_pptb() {
  workloads::Test1Params p;
  p.i_max = 16;
  p.lock1_prob = 0.5;
  tree::ProgramTree t = workloads::run_test1(p);
  tree::compress(t);
  return tree::to_binary(tree::pack(t));
}

JsonValue predict_req(const std::string& key) {
  JsonValue r;
  r.set("op", JsonValue("predict"));
  r.set("v", JsonValue(kProtocolVersion));
  r.set("key", JsonValue(key));
  JsonValue::Array threads;
  threads.emplace_back(std::uint64_t{2});
  threads.emplace_back(std::uint64_t{4});
  r.set("threads", JsonValue(std::move(threads)));
  return r;
}

class StatsEndpointTest : public ::testing::Test {
 protected:
  ServerConfig base_config(const char* tag) {
    ServerConfig cfg;
    cfg.socket_path = testing::TempDir() + "pp_stats_" + tag + ".sock";
    cfg.workers = 2;
    cfg.sweep_workers = 1;
    cfg.debug_ops = true;
    return cfg;
  }

  /// Finds histogram `name` in the server's registry snapshot.
  static const obs::HistogramSnapshot* find_hist(
      const obs::MetricsSnapshot& snap, const std::string& name) {
    for (const auto& [n, h] : snap.histograms) {
      if (n == name) return &h;
    }
    return nullptr;
  }
};

// The headline invariant behind "stage sums reconcile with the total": the
// per-stage histogram *totals* are exact sums of non-overlapping
// sub-intervals of each request, so read + queue_wait + compute + write +
// other == total, exactly — no bucket error, because totals never pass
// through buckets.
TEST_F(StatsEndpointTest, StageTotalsReconcileExactly) {
  Server server(base_config("reconcile"));
  server.start();
  Client c;
  c.connect(server.config().socket_path);
  const std::string key = c.upload(sample_pptb());
  for (int i = 0; i < 8; ++i) {
    const JsonValue r = c.call(predict_req(key));
    ASSERT_TRUE(r.at("ok").as_bool());
  }
  c.call("ping");
  server.stop();

  const obs::MetricsSnapshot snap = server.stats().metrics;
  const obs::HistogramSnapshot* total = find_hist(snap, "serve.total_us");
  const obs::HistogramSnapshot* read = find_hist(snap, "serve.read_us");
  const obs::HistogramSnapshot* queue = find_hist(snap, "serve.queue_wait_us");
  const obs::HistogramSnapshot* compute = find_hist(snap, "serve.compute_us");
  const obs::HistogramSnapshot* write = find_hist(snap, "serve.write_us");
  const obs::HistogramSnapshot* other = find_hist(snap, "serve.other_us");
  ASSERT_NE(total, nullptr);
  ASSERT_NE(read, nullptr);
  ASSERT_NE(queue, nullptr);
  ASSERT_NE(compute, nullptr);
  ASSERT_NE(write, nullptr);
  ASSERT_NE(other, nullptr);
  // 10 finished requests: upload + 8 predicts + ping.
  EXPECT_EQ(total->count, 10u);
  EXPECT_EQ(read->count, 10u);
  EXPECT_EQ(write->count, 10u);
  EXPECT_EQ(other->count, 10u);
  // Only the 9 queued ops waited; ping is answered inline.
  EXPECT_EQ(queue->count, 9u);
  EXPECT_GT(total->total, 0u);
  EXPECT_EQ(read->total + queue->total + compute->total + write->total +
                other->total,
            total->total);
}

TEST_F(StatsEndpointTest, StatsOpCarriesQuantiles) {
  Server server(base_config("quantiles"));
  server.start();
  Client c;
  c.connect(server.config().socket_path);
  const std::string key = c.upload(sample_pptb());
  for (int i = 0; i < 5; ++i) c.call(predict_req(key));

  const JsonValue stats = c.call("stats");
  ASSERT_TRUE(stats.at("ok").as_bool());
  const JsonValue& metrics = stats.at("stats").at("metrics");
  const JsonValue& hists = metrics.at("histograms");
  const JsonValue* total = hists.find("serve.total_us");
  ASSERT_NE(total, nullptr);
  // 6 finished requests (upload + 5 predicts) precede the stats op itself.
  EXPECT_EQ(total->at("count").as_u64(), 6u);
  const std::uint64_t p50 = total->at("p50").as_u64();
  const std::uint64_t p90 = total->at("p90").as_u64();
  const std::uint64_t p99 = total->at("p99").as_u64();
  EXPECT_GT(p50, 0u);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, total->at("max").as_u64());
  EXPECT_GE(p50, total->at("min").as_u64());
  // The per-kind split names the ops that actually ran.
  EXPECT_NE(hists.find("serve.total_us.upload"), nullptr);
  EXPECT_NE(hists.find("serve.total_us.predict"), nullptr);
  // Gauges ride along; the stats op itself never touches the compute queue.
  EXPECT_NE(metrics.at("gauges").find("serve.queue.depth"), nullptr);
  server.stop();
}

TEST_F(StatsEndpointTest, ComputeHistogramSplitsByCacheOutcome) {
  Server server(base_config("cachesplit"));
  server.start();
  Client c;
  c.connect(server.config().socket_path);
  const std::string key = c.upload(sample_pptb());
  const JsonValue first = c.call(predict_req(key));   // cold: miss
  ASSERT_TRUE(first.at("ok").as_bool());
  const JsonValue second = c.call(predict_req(key));  // identical: hit
  ASSERT_TRUE(second.at("ok").as_bool());
  server.stop();

  const obs::MetricsSnapshot snap = server.stats().metrics;
  const obs::HistogramSnapshot* hit = find_hist(snap, "serve.compute_us.hit");
  const obs::HistogramSnapshot* miss =
      find_hist(snap, "serve.compute_us.miss");
  ASSERT_NE(hit, nullptr);
  ASSERT_NE(miss, nullptr);
  EXPECT_EQ(hit->count, 1u);
  EXPECT_EQ(miss->count, 1u);
}

int raw_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// `pprophet stats --watch` keeps polling while a server drains; a stats
// frame already buffered when the drain begins must be answered for real
// (unlike compute ops, which get shutting_down) so the operator can watch
// the queue empty instead of going blind.
TEST_F(StatsEndpointTest, StatsAnswersDuringDrain) {
  ServerConfig cfg = base_config("drain");
  cfg.workers = 1;
  Server server(cfg);
  server.start();

  // Occupy the single worker so the raw client's first frame parks its
  // connection thread on a queued future, leaving the later frames sitting
  // unread in the socket buffer when the drain begins.
  Client busy;
  busy.connect(cfg.socket_path);
  JsonValue busy_resp;
  std::thread t([&] {
    JsonValue r;
    r.set("op", JsonValue("sleep"));
    r.set("ms", JsonValue(std::uint64_t{400}));
    busy_resp = busy.call(r);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const int fd = raw_connect(cfg.socket_path);
  ASSERT_GE(fd, 0);
  JsonValue sleep0;
  sleep0.set("op", JsonValue("sleep"));
  sleep0.set("ms", JsonValue(std::uint64_t{0}));
  write_frame(fd, json_dump(sleep0));  // admitted, queued behind `busy`
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  JsonValue stats_req;
  stats_req.set("op", JsonValue("stats"));
  write_frame(fd, json_dump(stats_req));           // buffered
  write_frame(fd, json_dump(predict_req("nope")));  // buffered

  server.request_shutdown();

  // Frame 1 was admitted before the drain: it runs to completion.
  std::string payload;
  ASSERT_TRUE(read_frame(fd, payload));
  EXPECT_TRUE(json_parse(payload).at("ok").as_bool()) << payload;
  // Frame 2, the buffered stats poll, is answered with live numbers.
  ASSERT_TRUE(read_frame(fd, payload));
  const JsonValue stats = json_parse(payload);
  ASSERT_TRUE(stats.at("ok").as_bool()) << payload;
  EXPECT_GE(stats.at("stats").at("requests").as_u64(), 1u);
  EXPECT_NE(stats.at("stats").at("metrics").find("histograms"), nullptr);
  // Frame 3, a buffered compute op, still gets the drain refusal.
  ASSERT_TRUE(read_frame(fd, payload));
  const JsonValue refused = json_parse(payload);
  EXPECT_FALSE(refused.at("ok").as_bool());
  EXPECT_EQ(refused.at("error").as_string(), kErrShuttingDown);
  ::close(fd);

  server.wait();
  t.join();
  EXPECT_TRUE(busy_resp.at("ok").as_bool());  // admitted request finished
}

// End-to-end request log: every finished request becomes one JSONL record
// with the stage breakdown; errors are logged at >= warn severity.
TEST_F(StatsEndpointTest, EventLogRecordsRequests) {
  std::ostringstream sink;
  obs::EventLog log(sink);
  ServerConfig cfg = base_config("log");
  cfg.event_log = &log;
  Server server(cfg);
  server.start();
  Client c;
  c.connect(server.config().socket_path);
  c.call("ping");
  const JsonValue nf = c.call(predict_req("no_such_key"));
  EXPECT_FALSE(nf.at("ok").as_bool());
  server.stop();

  EXPECT_EQ(log.written(), 2u);
  std::vector<std::string> lines;
  std::istringstream in(sink.str());
  for (std::string l; std::getline(in, l);) lines.push_back(l);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"op\":\"ping\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"outcome\":\"ok\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"read_us\":"), std::string::npos);
  EXPECT_NE(lines[0].find("\"compute_us\":"), std::string::npos);
  EXPECT_NE(lines[1].find("\"op\":\"predict\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"outcome\":\"not_found\""), std::string::npos);
}

}  // namespace
}  // namespace pprophet::serve
