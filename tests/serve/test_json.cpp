#include "serve/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace pprophet::serve {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json_parse("null").is_null());
  EXPECT_EQ(json_parse("true").as_bool(), true);
  EXPECT_EQ(json_parse("false").as_bool(), false);
  EXPECT_EQ(json_parse("42").as_int(), 42);
  EXPECT_EQ(json_parse("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(json_parse("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(json_parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(json_parse("\"hi\"").as_string(), "hi");
}

TEST(Json, IntegersStayIntegers) {
  // Cycle counts must round-trip bit-exactly (docs/SERVE.md); an int64 that
  // went through a double would lose low bits.
  const std::int64_t big = 9'007'199'254'740'993;  // 2^53 + 1
  const JsonValue v = json_parse(std::to_string(big));
  ASSERT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), big);
  EXPECT_EQ(json_dump(v), std::to_string(big));
}

TEST(Json, DoublesRoundTrip) {
  for (const double d : {0.1, 1.0 / 3.0, 6.02214076e23, -0.0625}) {
    const JsonValue back = json_parse(json_dump(JsonValue(d)));
    EXPECT_EQ(back.as_double(), d);
  }
}

TEST(Json, StringEscapes) {
  const JsonValue v = json_parse(R"("a\"b\\c\ndAé")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\nd"
                           "A\xC3\xA9");
  // Control characters must be escaped on output.
  const std::string dumped = json_dump(JsonValue(std::string("x\x01y")));
  EXPECT_EQ(dumped, "\"x\\u0001y\"");
  EXPECT_EQ(json_parse(dumped).as_string(), std::string("x\x01y"));
}

TEST(Json, SurrogatePairs) {
  const JsonValue v = json_parse(R"("😀")");  // 😀 U+1F600
  EXPECT_EQ(v.as_string(), "\xF0\x9F\x98\x80");
}

TEST(Json, ObjectsAndArrays) {
  const JsonValue v = json_parse(R"({"b":[1,2,{"x":null}],"a":true})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("b").as_array().size(), 3u);
  EXPECT_TRUE(v.at("b").as_array()[2].at("x").is_null());
  EXPECT_EQ(v.at("a").as_bool(), true);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), JsonError);
}

TEST(Json, DumpIsCanonical) {
  // Same fields, different order -> identical bytes (the result cache keys
  // on this).
  const JsonValue a = json_parse(R"({"z":1,"a":[true,"s"],"m":{"k":2}})");
  const JsonValue b = json_parse(R"({"m":{"k":2},"a":[true,"s"],"z":1})");
  EXPECT_EQ(json_dump(a), json_dump(b));
  EXPECT_EQ(json_dump(a), R"({"a":[true,"s"],"m":{"k":2},"z":1})");
  EXPECT_EQ(a, b);
}

TEST(Json, RejectsMalformed) {
  for (const char* bad :
       {"", "{", "[1,", "tru", "\"unterminated", "{\"a\":}", "01", "1.2.3",
        "[1 2]", "{\"a\" 1}", "nul", "\"bad \\q escape\"", "+5"}) {
    EXPECT_THROW(json_parse(bad), JsonError) << bad;
  }
}

TEST(Json, RejectsTrailingGarbage) {
  EXPECT_THROW(json_parse("1 2"), JsonError);
  EXPECT_THROW(json_parse("{} x"), JsonError);
  EXPECT_NO_THROW(json_parse("  {}  "));  // surrounding whitespace is fine
}

TEST(Json, RejectsRawControlCharactersInStrings) {
  EXPECT_THROW(json_parse("\"a\nb\""), JsonError);
}

TEST(Json, DepthLimit) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_THROW(json_parse(deep), JsonError);
  std::string ok;
  for (int i = 0; i < 50; ++i) ok += '[';
  for (int i = 0; i < 50; ++i) ok += ']';
  EXPECT_NO_THROW(json_parse(ok));
}

TEST(Json, TypedAccessorsThrowOnMismatch) {
  const JsonValue v = json_parse("\"s\"");
  EXPECT_THROW(v.as_int(), JsonError);
  EXPECT_THROW(v.as_bool(), JsonError);
  EXPECT_THROW(v.as_array(), JsonError);
  EXPECT_THROW(json_parse("-1").as_u64(), JsonError);
  // as_double accepts Int, as_int does not accept Double.
  EXPECT_DOUBLE_EQ(json_parse("3").as_double(), 3.0);
  EXPECT_THROW(json_parse("3.5").as_int(), JsonError);
}

TEST(Json, SetBuildsObjects) {
  JsonValue v;
  v.set("b", JsonValue(std::uint64_t{2}));
  v.set("a", JsonValue("x"));
  EXPECT_EQ(json_dump(v), R"({"a":"x","b":2})");
}

}  // namespace
}  // namespace pprophet::serve
