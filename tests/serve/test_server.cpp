// Loopback integration tests for the prediction service: real unix-domain
// sockets, concurrent client threads, graceful drain. Everything here also
// runs under PPROPHET_SANITIZE=thread via the `server` / `concurrency` ctest
// labels.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/sweep.hpp"
#include "report/experiment.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "tree/binary.hpp"
#include "tree/compress.hpp"
#include "workloads/test_patterns.hpp"

namespace pprophet::serve {
namespace {

std::string sample_pptb() {
  workloads::Test1Params p;
  p.i_max = 16;
  p.lock1_prob = 0.5;
  tree::ProgramTree t = workloads::run_test1(p);
  tree::compress(t);
  return tree::to_binary(tree::pack(t));
}

class ServerTest : public ::testing::Test {
 protected:
  ServerConfig base_config(const char* tag) {
    ServerConfig cfg;
    cfg.socket_path = testing::TempDir() + "pp_serve_" + tag + ".sock";
    cfg.workers = 2;
    cfg.sweep_workers = 1;
    cfg.debug_ops = true;
    return cfg;
  }
};

TEST_F(ServerTest, PingStatsAndUnknownOp) {
  Server server(base_config("ping"));
  server.start();
  Client c;
  c.connect(server.config().socket_path);

  const JsonValue pong = c.call("ping");
  EXPECT_TRUE(pong.at("ok").as_bool());

  const JsonValue bad = c.call("frobnicate");
  EXPECT_FALSE(bad.at("ok").as_bool());
  EXPECT_EQ(bad.at("error").as_string(), kErrBadRequest);

  const JsonValue stats = c.call("stats");
  ASSERT_TRUE(stats.at("ok").as_bool());
  const JsonValue& body = stats.at("stats");
  EXPECT_GE(body.at("requests").as_u64(), 2u);
  EXPECT_EQ(body.at("rejected").at("bad_request").as_u64(), 1u);
  EXPECT_EQ(body.at("store").at("trees").as_u64(), 0u);
  server.stop();
}

TEST_F(ServerTest, UploadIsIdempotentAcrossClients) {
  Server server(base_config("upload"));
  server.start();
  const std::string bytes = sample_pptb();

  Client a, b;
  a.connect(server.config().socket_path);
  b.connect(server.config().socket_path);
  const std::string key_a = a.upload(bytes);
  const std::string key_b = b.upload(bytes);
  EXPECT_EQ(key_a, key_b);

  JsonValue req;
  req.set("op", JsonValue("upload"));
  req.set("pptb", JsonValue(base64_encode(bytes)));
  const JsonValue resp = b.call(req);
  EXPECT_TRUE(resp.at("existed").as_bool());
  EXPECT_GT(resp.at("serial_cycles").as_u64(), 0u);

  const ServerStatsSnapshot s = server.stats();
  EXPECT_EQ(s.stored_trees, 1u);
  EXPECT_EQ(s.stored_bytes, bytes.size());
  server.stop();
}

// The "v" compat rule (docs/SERVE.md): no "v" means version 1 and the
// response stays in the v1 shape; v in [2, kProtocolVersion] is echoed;
// anything else gets the structured unsupported_version error.
TEST_F(ServerTest, ProtocolVersionNegotiation) {
  Server server(base_config("version"));
  server.start();
  Client c;
  c.connect(server.config().socket_path);

  // v1 request: no "v" field, response must not grow one.
  JsonValue v1;
  v1.set("op", JsonValue("ping"));
  const JsonValue r1 = c.call(v1);
  EXPECT_TRUE(r1.at("ok").as_bool());
  EXPECT_EQ(r1.find("v"), nullptr);

  // v2 request: echoed back.
  JsonValue v2;
  v2.set("op", JsonValue("ping"));
  v2.set("v", JsonValue(kProtocolVersion));
  const JsonValue r2 = c.call(v2);
  EXPECT_TRUE(r2.at("ok").as_bool());
  ASSERT_NE(r2.find("v"), nullptr);
  EXPECT_EQ(r2.at("v").as_u64(), kProtocolVersion);

  // Future version: structured refusal naming the code, echoing v.
  JsonValue v99;
  v99.set("op", JsonValue("ping"));
  v99.set("v", JsonValue(std::uint64_t{99}));
  const JsonValue r99 = c.call(v99);
  EXPECT_FALSE(r99.at("ok").as_bool());
  EXPECT_EQ(r99.at("error").as_string(), kErrUnsupportedVersion);
  EXPECT_EQ(r99.at("v").as_u64(), 99u);

  // Malformed versions are refused too, not half-parsed.
  for (JsonValue bad : {JsonValue("two"), JsonValue(std::uint64_t{0}),
                        JsonValue(2.5)}) {
    JsonValue req;
    req.set("op", JsonValue("ping"));
    req.set("v", std::move(bad));
    const JsonValue r = c.call(req);
    EXPECT_FALSE(r.at("ok").as_bool());
    EXPECT_EQ(r.at("error").as_string(), kErrUnsupportedVersion);
  }

  // The versioned op still does real work: a v2 upload + predict round.
  JsonValue up;
  up.set("op", JsonValue("upload"));
  up.set("v", JsonValue(kProtocolVersion));
  up.set("pptb", JsonValue(base64_encode(sample_pptb())));
  const JsonValue ur = c.call(up);
  ASSERT_TRUE(ur.at("ok").as_bool());
  EXPECT_EQ(ur.at("v").as_u64(), kProtocolVersion);
  JsonValue pr;
  pr.set("op", JsonValue("predict"));
  pr.set("v", JsonValue(kProtocolVersion));
  pr.set("key", ur.at("key"));
  const JsonValue presp = c.call(pr);
  ASSERT_TRUE(presp.at("ok").as_bool());
  EXPECT_EQ(presp.at("v").as_u64(), kProtocolVersion);
  server.stop();
}

// v1 and v2 clients interoperate against one server: the same predict
// issued both ways returns identical results (and shares the result cache,
// since the cache key is the compiled tree digest + canonical grid).
TEST_F(ServerTest, V1AndV2ClientsInteroperate) {
  Server server(base_config("interop"));
  server.start();
  const std::string bytes = sample_pptb();
  Client c;
  c.connect(server.config().socket_path);
  const std::string key = c.upload(bytes);

  const auto predict_req = [&](bool versioned) {
    JsonValue req;
    req.set("op", JsonValue("predict"));
    if (versioned) req.set("v", JsonValue(kProtocolVersion));
    req.set("key", JsonValue(key));
    req.set("threads", JsonValue(JsonValue::Array{JsonValue(2), JsonValue(4)}));
    return req;
  };
  const JsonValue r_v1 = c.call(predict_req(false));
  const JsonValue r_v2 = c.call(predict_req(true));
  ASSERT_TRUE(r_v1.at("ok").as_bool());
  ASSERT_TRUE(r_v2.at("ok").as_bool());
  EXPECT_EQ(r_v1.find("v"), nullptr);
  EXPECT_EQ(r_v2.at("v").as_u64(), kProtocolVersion);
  // Identical payloads, and the v2 call hit the cache the v1 call filled.
  EXPECT_EQ(r_v1.at("result"), r_v2.at("result"));
  EXPECT_FALSE(r_v1.at("cached").as_bool());
  EXPECT_TRUE(r_v2.at("cached").as_bool());
  server.stop();
}

TEST_F(ServerTest, ErrorPaths) {
  Server server(base_config("errors"));
  server.start();
  Client c;
  c.connect(server.config().socket_path);

  // Unknown tree key.
  JsonValue miss;
  miss.set("op", JsonValue("predict"));
  miss.set("key", JsonValue(std::string(32, '0')));
  const JsonValue not_found = c.call(miss);
  EXPECT_FALSE(not_found.at("ok").as_bool());
  EXPECT_EQ(not_found.at("error").as_string(), kErrNotFound);

  // Malformed upload payloads.
  JsonValue bad_b64;
  bad_b64.set("op", JsonValue("upload"));
  bad_b64.set("pptb", JsonValue("!!!not base64!!!"));
  EXPECT_EQ(c.call(bad_b64).at("error").as_string(), kErrBadRequest);
  JsonValue bad_tree;
  bad_tree.set("op", JsonValue("upload"));
  bad_tree.set("pptb", JsonValue(base64_encode("not a pptb stream")));
  EXPECT_EQ(c.call(bad_tree).at("error").as_string(), kErrBadRequest);

  // Bad request shapes: missing op, non-JSON frame, bad grid values.
  EXPECT_EQ(c.call(JsonValue(JsonValue::Object{}))
                .at("error")
                .as_string(),
            kErrBadRequest);

  const std::string key = c.upload(sample_pptb());
  JsonValue bad_threads;
  bad_threads.set("op", JsonValue("sweep"));
  bad_threads.set("key", JsonValue(key));
  bad_threads.set("threads", JsonValue(JsonValue::Array{JsonValue(0)}));
  EXPECT_EQ(c.call(bad_threads).at("error").as_string(), kErrBadRequest);
  JsonValue bad_method;
  bad_method.set("op", JsonValue("predict"));
  bad_method.set("key", JsonValue(key));
  bad_method.set("method", JsonValue("warp"));
  EXPECT_EQ(c.call(bad_method).at("error").as_string(), kErrBadRequest);
  server.stop();
}

// The acceptance-criteria test: the same sweep from 8 concurrent clients is
// bit-identical to core::sweep run in-process on the identical tree, and a
// repeat round is served from the result cache.
TEST_F(ServerTest, ConcurrentSweepsBitIdenticalToInProcessAndCached) {
  ServerConfig cfg = base_config("identity");
  cfg.workers = 4;
  Server server(cfg);
  server.start();
  const std::string bytes = sample_pptb();

  // In-process reference over the exact tree the server stores.
  core::SweepGrid grid;
  grid.methods = {core::Method::FastForward, core::Method::Synthesizer};
  grid.paradigms = {core::Paradigm::OpenMP};
  grid.schedules = {runtime::OmpSchedule::StaticCyclic,
                    runtime::OmpSchedule::Dynamic};
  grid.chunks = {1};
  grid.thread_counts = {2, 4, 8};
  grid.memory_models = {false};
  grid.base = report::paper_options(grid.methods.front());
  grid.base.machine.cores = 12;
  const tree::ProgramTree reference_tree =
      tree::unpack(tree::from_binary(bytes));
  const core::SweepResult expected = core::sweep(reference_tree, grid);

  JsonValue request;
  request.set("op", JsonValue("sweep"));
  request.set("methods", JsonValue(JsonValue::Array{JsonValue("ff"),
                                                    JsonValue("syn")}));
  request.set("schedules", JsonValue(JsonValue::Array{JsonValue("static1"),
                                                      JsonValue("dynamic")}));
  request.set("threads",
              JsonValue(JsonValue::Array{JsonValue(2), JsonValue(4),
                                         JsonValue(6 + 2)}));
  request.set("cores", JsonValue(12));

  const auto check_response = [&](const JsonValue& resp) {
    ASSERT_TRUE(resp.at("ok").as_bool()) << json_dump(resp);
    const JsonValue::Array& cells = resp.at("result").at("cells").as_array();
    ASSERT_EQ(cells.size(), expected.cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const core::SweepCell& want = expected.cells[i];
      const JsonValue& got = cells[i];
      EXPECT_EQ(got.at("method").as_string(), wire_name(want.point.method));
      EXPECT_EQ(got.at("schedule").as_string(),
                wire_name(want.point.schedule));
      EXPECT_EQ(got.at("threads").as_u64(), want.point.threads);
      // Bit-identical: integer cycles exact, speedup exact to the last bit
      // (%.17g round-trips IEEE doubles).
      EXPECT_EQ(got.at("serial_cycles").as_u64(),
                want.estimate.serial_cycles);
      EXPECT_EQ(got.at("parallel_cycles").as_u64(),
                want.estimate.parallel_cycles);
      EXPECT_EQ(got.at("speedup").as_double(), want.estimate.speedup);
    }
  };

  const auto round = [&](bool expect_all_cached) {
    std::vector<std::thread> clients;
    std::vector<JsonValue> responses(8);
    clients.reserve(8);
    for (int i = 0; i < 8; ++i) {
      clients.emplace_back([&, i] {
        Client c;
        c.connect(server.config().socket_path);
        JsonValue req = request;
        req.set("key", JsonValue(c.upload(bytes)));
        responses[static_cast<std::size_t>(i)] = c.call(req);
      });
    }
    for (auto& t : clients) t.join();
    for (const JsonValue& resp : responses) {
      check_response(resp);
      if (expect_all_cached) {
        EXPECT_TRUE(resp.at("cached").as_bool());
      }
    }
  };

  round(/*expect_all_cached=*/false);
  // Round two repeats the identical request: every response must come from
  // the result cache, and the cache hit rate is visibly > 0.
  round(/*expect_all_cached=*/true);
  const ServerStatsSnapshot s = server.stats();
  EXPECT_GE(s.cache.hits, 8u);
  EXPECT_GT(s.cache.hit_rate(), 0.0);
  EXPECT_EQ(s.stored_trees, 1u);  // 16 uploads deduped to one tree
  server.stop();
}

TEST_F(ServerTest, PredictAndRecommendRoundTrip) {
  Server server(base_config("predict"));
  server.start();
  Client c;
  c.connect(server.config().socket_path);
  const std::string key = c.upload(sample_pptb());

  JsonValue predict;
  predict.set("op", JsonValue("predict"));
  predict.set("key", JsonValue(key));
  predict.set("method", JsonValue("syn"));
  predict.set("threads",
              JsonValue(JsonValue::Array{JsonValue(2), JsonValue(4)}));
  const JsonValue presp = c.call(predict);
  ASSERT_TRUE(presp.at("ok").as_bool()) << json_dump(presp);
  ASSERT_EQ(presp.at("result").at("cells").as_array().size(), 2u);
  for (const JsonValue& cell : presp.at("result").at("cells").as_array()) {
    EXPECT_GT(cell.at("speedup").as_double(), 0.0);
  }

  JsonValue rec;
  rec.set("op", JsonValue("recommend"));
  rec.set("key", JsonValue(key));
  rec.set("threads", JsonValue(JsonValue::Array{JsonValue(2), JsonValue(4),
                                                JsonValue(8)}));
  const JsonValue rresp = c.call(rec);
  ASSERT_TRUE(rresp.at("ok").as_bool()) << json_dump(rresp);
  const JsonValue& best = rresp.at("result").at("best");
  EXPECT_GE(best.at("speedup").as_double(),
            rresp.at("result").at("economical").at("speedup").as_double() *
                0.99);
  EXPECT_FALSE(rresp.at("result").at("sweep").as_array().empty());

  // The memory-model variant runs against a private tree expansion and must
  // not corrupt the shared stored tree for later plain requests.
  JsonValue mm = predict;
  mm.set("memory_model", JsonValue(true));
  const JsonValue mresp = c.call(mm);
  ASSERT_TRUE(mresp.at("ok").as_bool()) << json_dump(mresp);
  const JsonValue again = c.call(predict);
  EXPECT_EQ(json_dump(again.at("result")), json_dump(presp.at("result")));
  server.stop();
}

TEST_F(ServerTest, BackpressureRejectsWithOverloaded) {
  ServerConfig cfg = base_config("backpressure");
  cfg.workers = 1;
  cfg.queue_limit = 1;
  Server server(cfg);
  server.start();

  const auto sleep_req = [](std::uint64_t ms) {
    JsonValue r;
    r.set("op", JsonValue("sleep"));
    r.set("ms", JsonValue(ms));
    return r;
  };

  // c1 occupies the single worker; c2 occupies the single queue slot; c3's
  // request then has nowhere to go and must be rejected immediately.
  Client c1, c2, c3;
  c1.connect(server.config().socket_path);
  c2.connect(server.config().socket_path);
  c3.connect(server.config().socket_path);
  JsonValue r1, r2;
  std::thread t1([&] { r1 = c1.call(sleep_req(600)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  std::thread t2([&] { r2 = c2.call(sleep_req(0)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const JsonValue rejected = c3.call(sleep_req(0));
  EXPECT_FALSE(rejected.at("ok").as_bool());
  EXPECT_EQ(rejected.at("error").as_string(), kErrOverloaded);

  t1.join();
  t2.join();
  EXPECT_TRUE(r1.at("ok").as_bool());
  EXPECT_TRUE(r2.at("ok").as_bool());
  EXPECT_GE(server.stats().overloaded, 1u);
  server.stop();
}

TEST_F(ServerTest, QueuedDeadlineExpiresIntoDeadlineExceeded) {
  ServerConfig cfg = base_config("deadline");
  cfg.workers = 1;
  Server server(cfg);
  server.start();

  Client c1, c2;
  c1.connect(server.config().socket_path);
  c2.connect(server.config().socket_path);
  JsonValue r1;
  std::thread t1([&] {
    JsonValue r;
    r.set("op", JsonValue("sleep"));
    r.set("ms", JsonValue(500));
    r1 = c1.call(r);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // Queued behind a 500 ms job with a 50 ms budget: by the time a worker
  // picks it up the deadline has long expired.
  JsonValue r;
  r.set("op", JsonValue("sleep"));
  r.set("ms", JsonValue(0));
  r.set("deadline_ms", JsonValue(50));
  const JsonValue expired = c2.call(r);
  EXPECT_FALSE(expired.at("ok").as_bool());
  EXPECT_EQ(expired.at("error").as_string(), kErrDeadline);

  t1.join();
  EXPECT_TRUE(r1.at("ok").as_bool());
  EXPECT_GE(server.stats().deadline_exceeded, 1u);
  server.stop();
}

TEST_F(ServerTest, SigtermDrainsInFlightRequestsBeforeExit) {
  ServerConfig cfg = base_config("sigterm");
  cfg.workers = 1;
  Server server(cfg);
  server.start();
  arm_signal_shutdown(server, {SIGTERM});

  JsonValue inflight;
  std::thread client([&] {
    Client c;
    c.connect(server.config().socket_path);
    JsonValue r;
    r.set("op", JsonValue("sleep"));
    r.set("ms", JsonValue(400));
    inflight = c.call(r);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // The drain must let the admitted 400 ms request finish and flush its
  // response before wait() returns.
  std::raise(SIGTERM);
  server.wait();
  disarm_signal_shutdown();
  client.join();

  ASSERT_TRUE(inflight.is_object());
  EXPECT_TRUE(inflight.at("ok").as_bool());
  EXPECT_FALSE(server.running());
  // The socket is gone: new clients cannot connect after the drain.
  Client late;
  EXPECT_THROW(late.connect(cfg.socket_path), std::runtime_error);
}

TEST_F(ServerTest, StaleSocketIsReclaimedLiveSocketIsNot) {
  ServerConfig cfg = base_config("stale");
  {
    // First instance exits uncleanly enough to leave the file behind:
    // simulate by binding the path and abandoning it.
    Server first(cfg);
    first.start();
    {
      // A second server on the same path must refuse while the first
      // lives — and its teardown must not unlink the live server's socket
      // file (it never owned the path).
      Server conflict(cfg);
      EXPECT_THROW(conflict.start(), std::runtime_error);
    }
    // After the loser is fully destroyed, the winner still answers.
    Client still;
    still.connect(cfg.socket_path);
    EXPECT_TRUE(still.call("ping").at("ok").as_bool());
    first.stop();
  }
  // A stale socket file with no listener behind it (crashed daemon) is
  // reclaimed by the next start().
  {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, cfg.socket_path.c_str(),
                 sizeof addr.sun_path - 1);
    ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof addr),
              0);
    ::close(fd);  // file stays behind, nobody listens
  }
  Server second(cfg);
  second.start();
  Client c;
  c.connect(cfg.socket_path);
  EXPECT_TRUE(c.call("ping").at("ok").as_bool());
  second.stop();
}

int raw_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// A request that was fully received (buffered on the connection) but not yet
// read when the drain begins is answered `shutting_down`, not dropped.
TEST_F(ServerTest, BufferedRequestDuringDrainGetsShuttingDown) {
  ServerConfig cfg = base_config("drainbuf");
  cfg.workers = 1;
  Server server(cfg);
  server.start();

  // Occupy the single worker so the raw client's first frame parks its
  // connection thread on a queued future, leaving the second frame sitting
  // unread in the socket buffer when the drain begins.
  Client busy;
  busy.connect(cfg.socket_path);
  JsonValue busy_resp;
  std::thread t([&] {
    JsonValue r;
    r.set("op", JsonValue("sleep"));
    r.set("ms", JsonValue(400));
    busy_resp = busy.call(r);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const int fd = raw_connect(cfg.socket_path);
  ASSERT_GE(fd, 0);
  JsonValue sleep0;
  sleep0.set("op", JsonValue("sleep"));
  sleep0.set("ms", JsonValue(0));
  write_frame(fd, json_dump(sleep0));  // admitted, queued behind `busy`
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  write_frame(fd, json_dump(sleep0));  // buffered: connection thread is busy

  server.request_shutdown();

  // Frame 1 was admitted before the drain: it runs to completion.
  std::string payload;
  ASSERT_TRUE(read_frame(fd, payload));
  EXPECT_TRUE(json_parse(payload).at("ok").as_bool()) << payload;
  // Frame 2 was only buffered: the drain answers it with shutting_down.
  ASSERT_TRUE(read_frame(fd, payload));
  const JsonValue second = json_parse(payload);
  EXPECT_FALSE(second.at("ok").as_bool());
  EXPECT_EQ(second.at("error").as_string(), kErrShuttingDown);
  ::close(fd);

  server.wait();
  t.join();
  EXPECT_TRUE(busy_resp.at("ok").as_bool());
  EXPECT_GE(server.stats().shutting_down, 1u);
}

// A client that pipelines requests but never reads responses eventually
// wedges its connection thread in send(); the send timeout must unwedge it
// so the drain still completes instead of hanging in wait() forever.
TEST_F(ServerTest, NeverReadingClientCannotHangDrain) {
  Server server(base_config("deadpeer"));
  server.start();

  const int fd = raw_connect(server.config().socket_path);
  ASSERT_GE(fd, 0);
  // Bound our own sends too: once both directions' buffers are full the
  // server is blocked in send() and we would otherwise block in write.
  timeval tv{};
  tv.tv_sec = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  JsonValue stats_req;
  stats_req.set("op", JsonValue("stats"));
  const std::string frame = json_dump(stats_req);
  try {
    for (int i = 0; i < 20000; ++i) write_frame(fd, frame);
  } catch (const ProtocolError&) {
    // Buffers full or connection already dropped — both mean the server
    // side is (or was) wedged in send, which is the scenario under test.
  }
  server.stop();  // must return: the wedged connection times out and drops
  EXPECT_FALSE(server.running());
  ::close(fd);
}

}  // namespace
}  // namespace pprophet::serve
