// Integration tests of the kernel-suite driver behind the Figure 2/12 and
// Table I/IV benches: the full profile → compress → burden → predict
// pipeline on real kernels, checked for the paper's qualitative invariants.
#include <gtest/gtest.h>

#include "kernel_suite.hpp"
#include "emul/kismet.hpp"
#include "tree/validate.hpp"

namespace pprophet::bench {
namespace {

const memmodel::BurdenModel& model() { return paper_burden_model(); }

std::vector<SuiteEntry> suite() { return paper_suite(1); }

const SuiteEntry& entry(const std::string& name) {
  static std::vector<SuiteEntry> s = suite();
  for (const auto& e : s) {
    if (e.name == name) return e;
  }
  throw std::runtime_error("no suite entry " + name);
}

TEST(KernelSuite, HasTheEightPaperBenchmarks) {
  const auto s = suite();
  ASSERT_EQ(s.size(), 8u);
  const char* expected[] = {"MD-OMP",  "LU-OMP", "FFT-Cilk", "QSort-Cilk",
                            "NPB-EP",  "NPB-FT", "NPB-CG",   "NPB-MG"};
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s[i].name, expected[i]);
  }
}

TEST(KernelSuite, CurvesHaveTheRightShapeEverywhere) {
  for (const auto& e : suite()) {
    const KernelCurves c = evaluate_kernel(e, model());
    ASSERT_EQ(c.real.size(), report::paper_core_counts().size()) << e.name;
    EXPECT_TRUE(tree::is_valid(c.tree)) << e.name;
    for (std::size_t i = 0; i < c.real.size(); ++i) {
      const double cores =
          static_cast<double>(report::paper_core_counts()[i]);
      EXPECT_GT(c.real[i], 0.5) << e.name;
      EXPECT_LE(c.real[i], cores * 1.02) << e.name;  // no superlinear
      EXPECT_LE(c.predm[i], c.pred[i] * 1.02) << e.name
          << ": burden can only slow the estimate down";
    }
  }
}

TEST(KernelSuite, ComputeBoundKernelsHaveUnitBurden) {
  for (const char* name : {"MD-OMP", "NPB-EP", "QSort-Cilk"}) {
    const KernelCurves c = evaluate_kernel(entry(name), model());
    for (std::size_t i = 0; i < c.pred.size(); ++i) {
      EXPECT_NEAR(c.predm[i], c.pred[i], 1e-9) << name;
    }
  }
}

TEST(KernelSuite, MemoryBoundKernelsGetBurdened) {
  for (const char* name : {"NPB-FT", "NPB-CG", "NPB-MG"}) {
    const KernelCurves c = evaluate_kernel(entry(name), model());
    EXPECT_LT(c.predm.back(), c.pred.back() * 0.95) << name;
    // And the burden brings the 12-core estimate closer to Real.
    const double blind_err = std::abs(c.pred.back() - c.real.back());
    const double burden_err = std::abs(c.predm.back() - c.real.back());
    EXPECT_LT(burden_err, blind_err) << name;
  }
}

TEST(KernelSuite, SynthesizerTracksRealOnComputeKernels) {
  for (const char* name : {"MD-OMP", "NPB-EP"}) {
    const KernelCurves c = evaluate_kernel(entry(name), model());
    for (std::size_t i = 0; i < c.real.size(); ++i) {
      EXPECT_NEAR(c.pred[i], c.real[i], 0.10 * c.real[i]) << name;
    }
  }
}

TEST(KernelSuite, ScaleParameterGrowsTheProblems) {
  // PP_SCALE=2 must still produce runnable entries (spot-check the cheap
  // ones; the big kernels are exercised by the benches).
  for (const auto& e : paper_suite(2)) {
    if (e.name != "QSort-Cilk" && e.name != "NPB-EP") continue;
    const KernelCurves c = evaluate_kernel(e, model());
    EXPECT_GT(c.real.back(), 1.0) << e.name;
  }
}

TEST(BaselineEmulators, SuitabilityIsWorstOnLuAndRecursion) {
  const auto& m = model();
  const KernelCurves lu = evaluate_kernel(entry("LU-OMP"), m);
  // The paper: Suitability "was not effective to predict LU-OMP".
  EXPECT_LT(lu.suit.back(), 0.6 * lu.real.back());
  const KernelCurves fft = evaluate_kernel(entry("FFT-Cilk"), m);
  EXPECT_LT(fft.suit.back(), 0.8 * fft.real.back());
}

TEST(BaselineEmulators, KismetUpperBoundsTheSuite) {
  const auto& m = model();
  for (const char* name : {"MD-OMP", "LU-OMP", "NPB-EP"}) {
    const KernelCurves c = evaluate_kernel(entry(name), m);
    const emul::KismetResult k = emul::analyze_kismet(c.tree);
    for (std::size_t i = 0; i < c.real.size(); ++i) {
      const CoreCount t = report::paper_core_counts()[i];
      EXPECT_GE(k.bound(t) * 1.02, c.real[i]) << name << " @" << t;
    }
  }
}

}  // namespace
}  // namespace pprophet::bench
