#include "tree/validate.hpp"

#include <gtest/gtest.h>

#include "tree/builder.hpp"

namespace pprophet::tree {
namespace {

ProgramTree valid_tree() {
  TreeBuilder b;
  b.u(10);
  b.begin_sec("s");
  b.begin_task("t").u(5).l(1, 3).end_task();
  b.end_sec();
  return b.finish();
}

TEST(Validate, AcceptsWellFormedTree) {
  const ProgramTree t = valid_tree();
  EXPECT_TRUE(is_valid(t));
  EXPECT_TRUE(validate(t).empty());
}

TEST(Validate, RejectsMissingRoot) {
  ProgramTree t;
  const auto issues = validate(t);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].message, "tree has no root");
}

TEST(Validate, RejectsTaskUnderRoot) {
  ProgramTree t = valid_tree();
  t.root->add_child(std::make_unique<Node>(NodeKind::Task, "stray"));
  EXPECT_FALSE(is_valid(t));
}

TEST(Validate, RejectsLeafWithChildren) {
  ProgramTree t = valid_tree();
  Node* u = t.root->child(0);
  ASSERT_EQ(u->kind(), NodeKind::U);
  u->add_child(std::make_unique<Node>(NodeKind::U, "nested"));
  const auto issues = validate(t);
  EXPECT_FALSE(issues.empty());
}

TEST(Validate, RejectsEmptySection) {
  ProgramTree t = valid_tree();
  t.root->add_child(std::make_unique<Node>(NodeKind::Sec, "empty"));
  const auto issues = validate(t);
  ASSERT_FALSE(issues.empty());
  bool found = false;
  for (const auto& i : issues) {
    if (i.message == "Sec node has no tasks") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Validate, RejectsZeroRepeat) {
  ProgramTree t = valid_tree();
  t.root->child(1)->child(0)->set_repeat(0);
  EXPECT_FALSE(is_valid(t));
}

TEST(Validate, RejectsUDirectlyUnderSec) {
  ProgramTree t = valid_tree();
  Node* sec = t.root->child(1);
  auto u = std::make_unique<Node>(NodeKind::U, "glue");
  u->set_length(1);
  sec->add_child(std::move(u));
  EXPECT_FALSE(is_valid(t));
}

TEST(Validate, ReportsPathToOffendingNode) {
  ProgramTree t = valid_tree();
  t.root->add_child(std::make_unique<Node>(NodeKind::Task, "stray"));
  const auto issues = validate(t);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].path.find("stray"), std::string::npos);
}

TEST(Validate, NestedSectionsAreLegalUnderTasks) {
  TreeBuilder b;
  b.begin_sec("outer");
  b.begin_task("i");
  b.begin_sec("inner");
  b.begin_task("j").u(1).end_task();
  b.end_sec();
  b.end_task();
  b.end_sec();
  const ProgramTree t = b.finish();
  EXPECT_TRUE(is_valid(t));
}

}  // namespace
}  // namespace pprophet::tree
