// Hypothetical tree edits (tree/edit.hpp): the compiled-array path must be
// indistinguishable — to every emulator — from editing the pointer tree and
// recompiling. These are the invariants the advisor's soundness contract
// (docs/ADVISOR.md) stands on.
#include "tree/edit.hpp"

#include <gtest/gtest.h>

#include "core/prophet.hpp"
#include "report/experiment.hpp"
#include "tree/builder.hpp"

#include "../property/random_trees.hpp"

namespace pprophet::tree {
namespace {

ProgramTree clone_tree(const ProgramTree& t) { return ProgramTree{t.root->clone()}; }

/// First lock id held anywhere below `n`, or 0 when lock-free.
LockId find_lock(const Node& n) {
  if (n.kind() == NodeKind::L) return n.lock_id();
  for (const NodePtr& c : n.children()) {
    if (const LockId id = find_lock(*c)) return id;
  }
  return 0;
}

bool section_has_nested(const Node& n) {
  for (const NodePtr& c : n.children()) {
    if (c->kind() == NodeKind::Sec || section_has_nested(*c)) return true;
  }
  return false;
}

/// The differential oracle: predict() over apply_edit(compiled) must be
/// bit-identical to predict() over compile(apply_edit(pointer tree)).
void expect_paths_identical(const ProgramTree& tree, const TreeEdit& edit) {
  const CompiledTree compiled = CompiledTree::compile(tree);
  const CompiledTree fast = apply_edit(compiled, edit);

  ProgramTree edited = clone_tree(tree);
  apply_edit(edited, edit);
  const CompiledTree slow = CompiledTree::compile(edited);

  ASSERT_EQ(fast.serial_cycles(), slow.serial_cycles());
  ASSERT_EQ(fast.top_u_cycles(), slow.top_u_cycles());
  core::PredictOptions o = report::paper_options(core::Method::Synthesizer);
  for (const CoreCount threads : {2u, 4u, 8u}) {
    const core::SpeedupEstimate a = core::predict(fast, threads, o);
    const core::SpeedupEstimate b = core::predict(slow, threads, o);
    EXPECT_EQ(a.parallel_cycles, b.parallel_cycles) << "t=" << threads;
    EXPECT_DOUBLE_EQ(a.speedup, b.speedup) << "t=" << threads;
  }
}

TEST(TreeEdit, SplitTasksMatchesPointerPathOnRandomTrees) {
  const std::uint64_t base = property_seed(0xED17'0001);
  int exercised = 0;
  for (std::uint64_t i = 0; i < 40 && exercised < 12; ++i) {
    const std::uint64_t seed = base + i;
    const ProgramTree t = random_tree(seed);
    SCOPED_TRACE(seed_trace(seed, t));
    const CompiledTree compiled = CompiledTree::compile(t);
    for (std::uint32_t s = 0; s < compiled.section_count(); ++s) {
      const Node* sec = nullptr;
      std::uint32_t seen = 0;
      for (const NodePtr& c : t.root->children()) {
        if (c->kind() == NodeKind::Sec && seen++ == s) sec = c.get();
      }
      ASSERT_NE(sec, nullptr);
      if (section_has_nested(*sec)) continue;
      TreeEdit e;
      e.kind = TreeEdit::Kind::SplitTasks;
      e.section = s;
      e.split = 2 + (seed % 3);
      expect_paths_identical(t, e);
      ++exercised;
    }
  }
  EXPECT_GT(exercised, 0);
}

TEST(TreeEdit, ShrinkLockMatchesPointerPathOnRandomTrees) {
  const std::uint64_t base = property_seed(0xED17'0002);
  int exercised = 0;
  for (std::uint64_t i = 0; i < 40 && exercised < 12; ++i) {
    const std::uint64_t seed = base + i;
    const ProgramTree t = random_tree(seed);
    SCOPED_TRACE(seed_trace(seed, t));
    std::uint32_t s = 0;
    for (const NodePtr& c : t.root->children()) {
      if (c->kind() != NodeKind::Sec) continue;
      if (const LockId lock = find_lock(*c)) {
        TreeEdit e;
        e.kind = TreeEdit::Kind::ShrinkLock;
        e.section = s;
        e.lock = lock;
        e.factor = (seed % 2) ? 0.5 : 0.1;
        expect_paths_identical(t, e);
        ++exercised;
      }
      ++s;
    }
  }
  EXPECT_GT(exercised, 0);
}

TEST(TreeEdit, ImproveBurdenMatchesPointerPath) {
  TreeBuilder b;
  b.begin_sec("hot");
  b.begin_task("t").u(10'000).end_task().repeat_last(32);
  b.end_sec();
  ProgramTree t = b.finish();
  t.root->children().front()->set_burden(4, 1.8);
  t.root->children().front()->set_burden(8, 2.5);

  TreeEdit e;
  e.kind = TreeEdit::Kind::ImproveBurden;
  e.section = 0;
  e.factor = 0.5;

  const CompiledTree fast = apply_edit(CompiledTree::compile(t), e);
  ProgramTree edited = clone_tree(t);
  apply_edit(edited, e);
  const CompiledTree slow = CompiledTree::compile(edited);

  // improved_burden halves the excess over beta = 1.
  EXPECT_DOUBLE_EQ(fast.section_burden(0, 4), 1.4);
  EXPECT_DOUBLE_EQ(fast.section_burden(0, 8), 1.75);
  core::PredictOptions o = report::paper_options(core::Method::Synthesizer);
  o.memory_model = true;
  for (const CoreCount threads : {4u, 8u}) {
    EXPECT_EQ(core::predict(fast, threads, o).parallel_cycles,
              core::predict(slow, threads, o).parallel_cycles);
  }
}

TEST(TreeEdit, MeasuredRootLengthShiftsWithTheWorkDelta) {
  TreeBuilder b;
  b.begin_sec("s");
  b.begin_task("t").l(1, 1'000).end_task().repeat_last(10);
  b.end_sec();
  ProgramTree t = b.finish();
  // Pretend the profiler measured 3000 cycles of unattributed overhead on
  // top of the 10'000 cycles of leaf work.
  t.root->set_length(13'000);

  TreeEdit e;
  e.kind = TreeEdit::Kind::ShrinkLock;
  e.section = 0;
  e.lock = 1;
  e.factor = 0.5;  // leaf work drops by 10 x 500 = 5'000 cycles

  const CompiledTree fast = apply_edit(CompiledTree::compile(t), e);
  EXPECT_EQ(fast.serial_cycles(), 8'000u);
  ProgramTree edited = clone_tree(t);
  apply_edit(edited, e);
  EXPECT_EQ(CompiledTree::compile(edited).serial_cycles(), 8'000u);
}

TEST(TreeEdit, DigestSaltTouchesOnlyTheEditedSection) {
  TreeBuilder b;
  b.begin_sec("a");
  b.begin_task("t").u(5'000).end_task().repeat_last(8);
  b.end_sec();
  b.begin_sec("b");
  b.begin_task("t").u(7'000).end_task().repeat_last(8);
  b.end_sec();
  const ProgramTree t = b.finish();
  const CompiledTree before = CompiledTree::compile(t);

  TreeEdit e;
  e.kind = TreeEdit::Kind::SplitTasks;
  e.section = 0;
  e.split = 4;
  const CompiledTree after = apply_edit(before, e);

  EXPECT_NE(after.section_digest(0), before.section_digest(0));
  EXPECT_EQ(after.section_digest(1), before.section_digest(1));
  EXPECT_NE(after.tree_digest(), before.tree_digest());

  // Differently parameterized edits must not collide in the memo.
  TreeEdit e8 = e;
  e8.split = 8;
  EXPECT_NE(apply_edit(before, e8).section_digest(0),
            after.section_digest(0));
}

TEST(TreeEdit, RejectsInvalidEdits) {
  TreeBuilder b;
  b.begin_sec("s");
  b.begin_task("t").u(1'000).end_task();
  b.end_sec();
  const ProgramTree t = b.finish();
  const CompiledTree compiled = CompiledTree::compile(t);

  TreeEdit e;
  e.section = 7;  // out of range
  EXPECT_THROW(apply_edit(compiled, e), std::invalid_argument);

  e.section = 0;
  e.kind = TreeEdit::Kind::SplitTasks;
  e.split = 1;  // no-op split
  EXPECT_THROW(apply_edit(compiled, e), std::invalid_argument);

  e.kind = TreeEdit::Kind::ShrinkLock;
  e.lock = 42;  // never held in the section
  e.factor = 0.5;
  EXPECT_THROW(apply_edit(compiled, e), std::invalid_argument);

  e.kind = TreeEdit::Kind::ImproveBurden;
  e.factor = 1.5;  // factors are [0, 1]
  EXPECT_THROW(apply_edit(compiled, e), std::invalid_argument);

  // The pointer-tree path enforces the same contracts.
  ProgramTree copy = clone_tree(t);
  TreeEdit bad;
  bad.section = 7;
  EXPECT_THROW(apply_edit(copy, bad), std::invalid_argument);
}

TEST(TreeEdit, SplitRejectsSectionsWithNestedSections) {
  TreeBuilder b;
  b.begin_sec("outer");
  b.begin_task("t");
  b.u(100);
  b.begin_sec("inner");
  b.begin_task("nt").u(200).end_task();
  b.end_sec();
  b.end_task();
  b.end_sec();
  const ProgramTree t = b.finish();

  TreeEdit e;
  e.kind = TreeEdit::Kind::SplitTasks;
  e.section = 0;
  e.split = 2;
  EXPECT_THROW(apply_edit(CompiledTree::compile(t), e),
               std::invalid_argument);
  ProgramTree copy = clone_tree(t);
  EXPECT_THROW(apply_edit(copy, e), std::invalid_argument);
}

}  // namespace
}  // namespace pprophet::tree
