#include "tree/serialize.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "tree/builder.hpp"
#include "tree/compress.hpp"

namespace pprophet::tree {
namespace {

ProgramTree sample_tree() {
  TreeBuilder b;
  b.u(100);
  b.begin_sec("loop1");
  SectionCounters c;
  c.instructions = 5000;
  c.cycles = 12000;
  c.llc_misses = 42;
  c.llc_writebacks = 17;
  b.counters(c);
  b.begin_task("t");
  b.u(50);
  b.l(3, 25);
  b.begin_sec("inner");
  b.begin_task("j").u(40).end_task().repeat_last(4);
  b.end_sec(false);
  b.end_task();
  b.repeat_last(7);
  b.end_sec();
  return b.finish();
}

TEST(Serialize, RoundTripPreservesStructure) {
  const ProgramTree t = sample_tree();
  const std::string text = to_text(t);
  const ProgramTree back = from_text(text);
  EXPECT_TRUE(structurally_equal(*t.root, *back.root, 0.0));
}

TEST(Serialize, RoundTripPreservesCounters) {
  const ProgramTree t = sample_tree();
  const ProgramTree back = from_text(to_text(t));
  const Node* sec = back.root->child(1);
  ASSERT_NE(sec->counters(), nullptr);
  EXPECT_EQ(sec->counters()->instructions, 5000u);
  EXPECT_EQ(sec->counters()->cycles, 12000u);
  EXPECT_EQ(sec->counters()->llc_misses, 42u);
  EXPECT_EQ(sec->counters()->llc_writebacks, 17u);
}

TEST(Serialize, RoundTripPreservesNowaitAndLocks) {
  const ProgramTree t = sample_tree();
  const ProgramTree back = from_text(to_text(t));
  const Node* task = back.root->child(1)->child(0);
  EXPECT_EQ(task->repeat(), 7u);
  EXPECT_EQ(task->child(1)->lock_id(), 3u);
  EXPECT_FALSE(task->child(2)->barrier_at_end());
}

TEST(Serialize, TextContainsHumanReadableKinds) {
  const std::string text = to_text(sample_tree());
  EXPECT_NE(text.find("Root"), std::string::npos);
  EXPECT_NE(text.find("Sec loop1"), std::string::npos);
  EXPECT_NE(text.find("lock=3"), std::string::npos);
  EXPECT_NE(text.find("rep=7"), std::string::npos);
}

TEST(Deserialize, RejectsUnknownKind) {
  EXPECT_THROW(from_text("Bogus x len=1\n"), std::runtime_error);
}

TEST(Deserialize, RejectsOddIndent) {
  EXPECT_THROW(from_text("Root r len=0\n Sec s len=1\n"), std::runtime_error);
}

TEST(Deserialize, RejectsIndentationJump) {
  EXPECT_THROW(from_text("Root r len=0\n    Sec s len=1\n"),
               std::runtime_error);
}

TEST(Deserialize, RejectsEmptyInput) {
  EXPECT_THROW(from_text(""), std::runtime_error);
}

TEST(Deserialize, RejectsMultipleRoots) {
  EXPECT_THROW(from_text("Root a len=0\nRoot b len=0\n"), std::runtime_error);
}

TEST(Deserialize, RejectsBadInteger) {
  EXPECT_THROW(from_text("Root r len=xyz\n"), std::runtime_error);
}

TEST(Deserialize, RejectsUnknownField) {
  EXPECT_THROW(from_text("Root r len=1 zap=2\n"), std::runtime_error);
}

TEST(Deserialize, AnonymousNameRoundTrips) {
  const ProgramTree t = from_text("Root _ len=0\n  U len=5\n");
  EXPECT_EQ(t.root->name(), "");
  EXPECT_EQ(t.root->child(0)->length(), 5u);
}

}  // namespace
}  // namespace pprophet::tree
