#include "tree/binary.hpp"

#include <gtest/gtest.h>

#include "tree/builder.hpp"
#include "tree/serialize.hpp"
#include "util/rng.hpp"

namespace pprophet::tree {
namespace {

ProgramTree sample_tree() {
  TreeBuilder b;
  b.u(1'000);
  b.begin_sec("s");
  b.begin_task("t").u(50).l(2, 25).end_task().repeat_last(100);
  b.begin_task("odd").u(77).end_task();
  b.end_sec(false);
  b.u(9);
  ProgramTree t = b.finish();
  compress(t);
  return t;
}

TEST(BinaryTree, RoundTripsExactly) {
  const ProgramTree t = sample_tree();
  const PackedTree packed = pack(t);
  const PackedTree back = from_binary(to_binary(packed));
  const ProgramTree a = unpack(packed);
  const ProgramTree b = unpack(back);
  EXPECT_TRUE(structurally_equal(*a.root, *b.root, 0.0));
  EXPECT_EQ(a.total_serial_cycles(), b.total_serial_cycles());
}

TEST(BinaryTree, PreservesNowaitAndLocks) {
  const PackedTree back = from_binary(to_binary(pack(sample_tree())));
  const ProgramTree t = unpack(back);
  const Node* sec = t.root->child(1);
  EXPECT_FALSE(sec->barrier_at_end());
  EXPECT_EQ(sec->child(0)->child(1)->lock_id(), 2u);
  EXPECT_EQ(sec->child(0)->repeat(), 100u);
}

TEST(BinaryTree, SmallerThanTextForRepetitiveTrees) {
  TreeBuilder b;
  for (int i = 0; i < 32; ++i) {
    b.u(1'000 + 10 * i);
    b.begin_sec("s");
    for (int j = 0; j < 64; ++j) b.begin_task("t").u(7).end_task();
    b.end_sec();
  }
  ProgramTree t = b.finish();
  compress(t);
  const std::string binary = to_binary(pack(t));
  const std::string text = to_text(t);
  EXPECT_LT(binary.size(), text.size() / 2);
}

TEST(BinaryTree, RejectsBadMagic) {
  EXPECT_THROW(from_binary("NOPE....."), std::runtime_error);
  EXPECT_THROW(from_binary(""), std::runtime_error);
}

TEST(BinaryTree, RejectsBadVersion) {
  std::string bytes = to_binary(pack(sample_tree()));
  bytes[4] = 99;  // version byte
  EXPECT_THROW(from_binary(bytes), std::runtime_error);
}

TEST(BinaryTree, RejectsTruncation) {
  const std::string bytes = to_binary(pack(sample_tree()));
  for (const std::size_t cut : {5ul, bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_THROW(from_binary(bytes.substr(0, cut)), std::runtime_error)
        << "cut at " << cut;
  }
}

TEST(BinaryTree, FuzzedBytesNeverCrash) {
  util::Xoshiro256 rng(404);
  const std::string good = to_binary(pack(sample_tree()));
  for (int trial = 0; trial < 200; ++trial) {
    std::string bytes = good;
    const std::size_t pos = rng.uniform_u64(0, bytes.size() - 1);
    bytes[pos] = static_cast<char>(rng.uniform_u64(0, 255));
    try {
      const PackedTree p = from_binary(bytes);
      // Parsed despite the flip: the tree must still be expandable.
      const ProgramTree t = unpack(p);
      (void)t;
    } catch (const std::runtime_error&) {
      // Rejection is fine; crashing is not.
    }
  }
  SUCCEED();
}

TEST(BinaryTree, EmptyPackedTreeRoundTrips) {
  PackedTree empty;
  const PackedTree back = from_binary(to_binary(empty));
  EXPECT_TRUE(back.dictionary.empty());
  EXPECT_TRUE(back.top.empty());
}

}  // namespace
}  // namespace pprophet::tree
