#include "tree/node.hpp"

#include <gtest/gtest.h>

#include "tree/builder.hpp"

namespace pprophet::tree {
namespace {

TEST(Node, KindNames) {
  EXPECT_STREQ(to_string(NodeKind::Root), "Root");
  EXPECT_STREQ(to_string(NodeKind::Sec), "Sec");
  EXPECT_STREQ(to_string(NodeKind::Task), "Task");
  EXPECT_STREQ(to_string(NodeKind::U), "U");
  EXPECT_STREQ(to_string(NodeKind::L), "L");
}

TEST(Node, DefaultsMatchProfilerExpectations) {
  Node n(NodeKind::U, "u");
  EXPECT_EQ(n.length(), 0u);
  EXPECT_EQ(n.repeat(), 1u);
  EXPECT_TRUE(n.barrier_at_end());
  EXPECT_EQ(n.counters(), nullptr);
  EXPECT_DOUBLE_EQ(n.burden(4), 1.0);
}

TEST(Node, BurdenFactorsPerThreadCount) {
  Node n(NodeKind::Sec, "s");
  n.set_burden(2, 1.2);
  n.set_burden(4, 1.4);
  EXPECT_DOUBLE_EQ(n.burden(2), 1.2);
  EXPECT_DOUBLE_EQ(n.burden(4), 1.4);
  EXPECT_DOUBLE_EQ(n.burden(8), 1.0);  // unset -> no penalty
  n.set_burden(2, 1.25);               // overwrite
  EXPECT_DOUBLE_EQ(n.burden(2), 1.25);
}

TEST(Node, SerialWorkCountsRepeats) {
  // Figure-4 style: a section of 4 iterations, each U(40) — stored
  // compressed as one Task with repeat=4.
  TreeBuilder b;
  b.begin_sec("loop");
  b.begin_task("t").u(40).end_task().repeat_last(4);
  b.end_sec();
  const ProgramTree t = b.finish();
  EXPECT_EQ(t.total_serial_cycles(), 160u);
}

TEST(Node, SerialWorkExcludesInternalNodeLengths) {
  // Aggregate node lengths must not double-count leaf work.
  TreeBuilder b;
  b.begin_sec("s").begin_task("t").u(10).l(1, 20).end_task().end_sec();
  const ProgramTree t = b.finish();
  EXPECT_EQ(t.total_serial_cycles(), 30u);
  EXPECT_EQ(t.root->child(0)->length(), 30u);  // filled aggregate
}

TEST(Node, CountersAccessors) {
  Node n(NodeKind::Sec, "s");
  SectionCounters c;
  c.instructions = 1000;
  c.cycles = 2000;
  c.llc_misses = 10;
  n.set_counters(c);
  ASSERT_NE(n.counters(), nullptr);
  EXPECT_EQ(n.counters()->instructions, 1000u);
  EXPECT_DOUBLE_EQ(n.counters()->mpi(), 0.01);
}

TEST(SectionCounters, MpiZeroWhenNoInstructions) {
  SectionCounters c;
  EXPECT_DOUBLE_EQ(c.mpi(), 0.0);
}

TEST(SectionCounters, TrafficMbps) {
  SectionCounters c;
  c.cycles = 1'000'000'000;  // 1 second at 1 GHz
  c.llc_misses = 1'000'000;  // 64 MB of lines
  EXPECT_NEAR(c.traffic_mbps(), 64.0, 1e-9);
}

TEST(SectionCounters, TrafficZeroWhenNoCycles) {
  SectionCounters c;
  c.llc_misses = 5;
  EXPECT_DOUBLE_EQ(c.traffic_mbps(), 0.0);
}

TEST(Node, CloneIsDeepAndEqual) {
  TreeBuilder b;
  b.begin_sec("s");
  b.current()->set_burden(2, 1.3);
  SectionCounters c;
  c.instructions = 7;
  b.counters(c);
  b.begin_task("t").u(10).l(2, 5).end_task().repeat_last(3);
  b.end_sec(false);
  const ProgramTree t = b.finish();

  const NodePtr copy = t.root->clone();
  EXPECT_EQ(copy->subtree_size(), t.root->subtree_size());
  EXPECT_EQ(copy->serial_work(), t.root->serial_work());
  const Node* sec = copy->child(0);
  EXPECT_DOUBLE_EQ(sec->burden(2), 1.3);
  EXPECT_FALSE(sec->barrier_at_end());
  ASSERT_NE(sec->counters(), nullptr);
  EXPECT_EQ(sec->counters()->instructions, 7u);
  // Deep: mutating the copy must not touch the original.
  const_cast<Node*>(sec)->set_length(9999);
  EXPECT_NE(t.root->child(0)->length(), 9999u);
}

TEST(Node, LogicalChildCount) {
  TreeBuilder b;
  b.begin_sec("s");
  b.begin_task("a").u(1).end_task().repeat_last(10);
  b.begin_task("b").u(2).end_task().repeat_last(5);
  b.end_sec();
  const ProgramTree t = b.finish();
  EXPECT_EQ(t.root->child(0)->logical_child_count(), 15u);
  EXPECT_EQ(t.root->child(0)->children().size(), 2u);
}

}  // namespace
}  // namespace pprophet::tree
