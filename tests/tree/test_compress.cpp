#include "tree/compress.hpp"

#include <gtest/gtest.h>

#include "tree/builder.hpp"
#include "tree/tree_stats.hpp"
#include "tree/validate.hpp"

namespace pprophet::tree {
namespace {

// A loop of `n` iterations each with one U leaf of the given lengths.
ProgramTree loop_tree(const std::vector<Cycles>& iter_lengths) {
  TreeBuilder b;
  b.begin_sec("loop");
  for (std::size_t i = 0; i < iter_lengths.size(); ++i) {
    b.begin_task("t").u(iter_lengths[i]).end_task();
  }
  b.end_sec();
  return b.finish();
}

TEST(Compress, MergesIdenticalIterations) {
  ProgramTree t = loop_tree(std::vector<Cycles>(1000, 50));
  const CompressStats s = compress(t);
  EXPECT_EQ(s.nodes_before, 1 + 1 + 1000 * 2u);
  // All 1000 iterations collapse into one Task (+U) with repeat 1000.
  EXPECT_EQ(t.root->child(0)->children().size(), 1u);
  EXPECT_EQ(t.root->child(0)->child(0)->repeat(), 1000u);
  EXPECT_EQ(s.nodes_after, 4u);
  EXPECT_GT(s.node_reduction(), 0.99);
  EXPECT_FALSE(s.lossy_merges);
}

TEST(Compress, PreservesSerialWork) {
  ProgramTree t = loop_tree(std::vector<Cycles>(257, 123));
  const Cycles before = t.total_serial_cycles();
  compress(t);
  EXPECT_EQ(t.total_serial_cycles(), before);
}

TEST(Compress, ToleranceMergesNearbyLengths) {
  // 5% tolerance: 100 and 103 merge; 100 and 120 do not.
  ProgramTree t1 = loop_tree({100, 103, 100, 103});
  compress(t1, {.tolerance = 0.05});
  EXPECT_EQ(t1.root->child(0)->children().size(), 1u);

  ProgramTree t2 = loop_tree({100, 120, 100, 120});
  compress(t2, {.tolerance = 0.05});
  EXPECT_EQ(t2.root->child(0)->children().size(), 4u);
}

TEST(Compress, MergedLengthIsWeightedAverage) {
  ProgramTree t = loop_tree({100, 104});
  compress(t, {.tolerance = 0.05});
  ASSERT_EQ(t.root->child(0)->children().size(), 1u);
  EXPECT_EQ(t.root->child(0)->child(0)->child(0)->length(), 102u);
  // Serial work is preserved within rounding: 2 * 102 == 204.
  EXPECT_EQ(t.total_serial_cycles(), 204u);
}

TEST(Compress, LossyModeAbsorbsLargeDeviations) {
  ProgramTree t = loop_tree({100, 150, 100, 150});
  const CompressStats s =
      compress(t, {.tolerance = 0.05, .lossy = true, .lossy_tolerance = 0.5});
  EXPECT_EQ(t.root->child(0)->children().size(), 1u);
  EXPECT_TRUE(s.lossy_merges);
  EXPECT_GT(s.max_absorbed_deviation, 0.05);
}

TEST(Compress, DoesNotMergeAcrossDifferentLockIds) {
  TreeBuilder b;
  b.begin_sec("s");
  b.begin_task("t").l(1, 50).end_task();
  b.begin_task("t").l(2, 50).end_task();
  b.end_sec();
  ProgramTree t = b.finish();
  compress(t);
  EXPECT_EQ(t.root->child(0)->children().size(), 2u);
}

TEST(Compress, DoesNotMergeDifferentShapes) {
  TreeBuilder b;
  b.begin_sec("s");
  b.begin_task("t").u(50).end_task();
  b.begin_task("t").u(50).l(1, 10).end_task();
  b.end_sec();
  ProgramTree t = b.finish();
  compress(t);
  EXPECT_EQ(t.root->child(0)->children().size(), 2u);
}

TEST(Compress, AlternatingPatternDoesNotCollapse) {
  // RLE only merges consecutive runs; A B A B stays 4 entries.
  ProgramTree t = loop_tree({10, 1000, 10, 1000});
  compress(t);
  EXPECT_EQ(t.root->child(0)->children().size(), 4u);
}

TEST(Compress, NestedLoopsCompressBottomUp) {
  TreeBuilder b;
  b.begin_sec("outer");
  for (int i = 0; i < 8; ++i) {
    b.begin_task("it");
    b.u(10);
    b.begin_sec("inner");
    for (int j = 0; j < 16; ++j) {
      b.begin_task("jt").u(5).end_task();
    }
    b.end_sec();
    b.end_task();
  }
  b.end_sec();
  ProgramTree t = b.finish();
  const Cycles work = t.total_serial_cycles();
  const CompressStats s = compress(t);
  // Inner loops compress to repeat=16, then all 8 outer iterations become
  // structurally identical and compress to repeat=8.
  EXPECT_EQ(t.root->child(0)->children().size(), 1u);
  EXPECT_EQ(t.root->child(0)->child(0)->repeat(), 8u);
  EXPECT_EQ(t.total_serial_cycles(), work);
  EXPECT_LT(s.nodes_after, s.nodes_before / 10);
  EXPECT_TRUE(is_valid(t));
}

TEST(Compress, StructurallyEqualRespectsBarrierFlag) {
  TreeBuilder b1;
  b1.begin_sec("s").begin_task("t").u(1).end_task().end_sec(true);
  TreeBuilder b2;
  b2.begin_sec("s").begin_task("t").u(1).end_task().end_sec(false);
  const ProgramTree t1 = b1.finish();
  const ProgramTree t2 = b2.finish();
  EXPECT_FALSE(structurally_equal(*t1.root, *t2.root, 0.0));
}

TEST(Pack, DictionaryDeduplicatesNonAdjacentPatterns) {
  // A B A B: RLE cannot merge, but the dictionary should store A and B once.
  ProgramTree t = loop_tree({10, 1000, 10, 1000});
  compress(t);
  const PackedTree packed = pack(t);
  // Patterns: U(10), Task(U10), U(1000), Task(U1000), Sec == 5 unique.
  EXPECT_EQ(packed.dictionary.size(), 5u);
  EXPECT_EQ(packed.top.size(), 1u);
}

TEST(Pack, UnpackRoundTripsStructure) {
  ProgramTree t = loop_tree({10, 1000, 10, 1000, 10, 1000});
  compress(t);
  const PackedTree packed = pack(t);
  const ProgramTree back = unpack(packed);
  EXPECT_EQ(back.total_serial_cycles(), t.total_serial_cycles());
  EXPECT_TRUE(structurally_equal(*t.root, *back.root, 0.0));
}

TEST(Pack, PackedFormIsSmallerForRepetitiveTrees) {
  TreeBuilder b;
  // 64 sections, identical shape, interleaved with distinct serial U nodes
  // so RLE at the top level cannot merge them.
  for (int i = 0; i < 64; ++i) {
    b.u(1000 + 200 * i);
    b.begin_sec("s");
    for (int j = 0; j < 32; ++j) b.begin_task("t").u(7).end_task();
    b.end_sec();
  }
  ProgramTree t = b.finish();
  compress(t);
  const TreeStats after_rle = compute_stats(t);
  const PackedTree packed = pack(t);
  EXPECT_LT(packed.approx_bytes(), after_rle.approx_bytes / 2);
}

TEST(Compress, EmptyTreeIsANoop) {
  ProgramTree t;
  const CompressStats s = compress(t);
  EXPECT_EQ(s.nodes_before, 0u);
  EXPECT_EQ(s.nodes_after, 0u);
}

}  // namespace
}  // namespace pprophet::tree
