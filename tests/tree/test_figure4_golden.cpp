// Golden test: the paper's Figure 4 example program, profiled through the
// annotation API, must serialize to an exact expected tree — lengths,
// nesting, lock ids, the implicit barrier, and burden-factor attachment.
#include <gtest/gtest.h>

#include "annotate/annotations.hpp"
#include "trace/profiler.hpp"
#include "tree/serialize.hpp"

namespace pprophet::tree {
namespace {

// Figure 4's code: loop1 over i; Compute(p1)=50, lock1-protected
// Compute(p2)=25|20, conditional inner loop2 with iterations of 50/40,
// Compute(p5)=25|10. We replay the figure's concrete instance: the first
// outer iteration takes the inner loop (4 iterations 50,50,50,40), the
// second does not.
ProgramTree profile_figure4() {
  trace::ManualClock clock;
  trace::IntervalProfiler profiler(clock);
  annotate::ScopedAnnotationTarget scope(profiler);

  PAR_SEC_BEGIN("loop1");
  // Outer iteration 0: takes the inner loop.
  PAR_TASK_BEGIN("t1");
  clock.advance(50);  // Compute(p1)
  LOCK_BEGIN(1);
  clock.advance(25);  // Compute(p2)
  LOCK_END(1);
  PAR_SEC_BEGIN("loop2");
  for (const Cycles len : {50u, 50u, 50u, 40u}) {
    PAR_TASK_BEGIN("t2");
    clock.advance(len);
    PAR_TASK_END();
  }
  PAR_SEC_END(true /*implicit barrier*/);
  clock.advance(25);  // Compute(p5)
  PAR_TASK_END();
  // Outer iteration 1: skips the inner loop.
  PAR_TASK_BEGIN("t1");
  clock.advance(10);  // Compute(p1), shorter
  LOCK_BEGIN(1);
  clock.advance(20);
  LOCK_END(1);
  clock.advance(10);
  PAR_TASK_END();
  PAR_SEC_END(true);
  return profiler.finish();
}

constexpr const char* kGolden =
    "Root root len=330\n"
    "  Sec loop1 len=330\n"
    "    Task t1 len=290\n"
    "      U len=50\n"
    "      L len=25 lock=1\n"
    "      Sec loop2 len=190\n"
    "        Task t2 len=50\n"
    "          U len=50\n"
    "        Task t2 len=50\n"
    "          U len=50\n"
    "        Task t2 len=50\n"
    "          U len=50\n"
    "        Task t2 len=40\n"
    "          U len=40\n"
    "      U len=25\n"
    "    Task t1 len=40\n"
    "      U len=10\n"
    "      L len=20 lock=1\n"
    "      U len=10\n";

TEST(Figure4Golden, ProfiledTreeMatchesThePaperExactly) {
  const ProgramTree t = profile_figure4();
  EXPECT_EQ(to_text(t), kGolden);
}

TEST(Figure4Golden, GoldenTextParsesBackToTheSameTree) {
  const ProgramTree parsed = from_text(kGolden);
  const ProgramTree profiled = profile_figure4();
  EXPECT_EQ(to_text(parsed), to_text(profiled));
}

TEST(Figure4Golden, FigureQuantitiesHold) {
  const ProgramTree t = profile_figure4();
  const Node* loop1 = t.root->child(0);
  // Figure 4 annotates the section with burden factors in the margin.
  loop1->children();  // (structure as drawn)
  const Node* inner = loop1->child(0)->child(2);
  EXPECT_EQ(inner->kind(), NodeKind::Sec);
  EXPECT_EQ(inner->length(), 190u);  // the figure's Sec 190
  EXPECT_EQ(loop1->child(0)->length(), 290u);
  EXPECT_EQ(t.total_serial_cycles(), 330u);
}

}  // namespace
}  // namespace pprophet::tree
