// Equivalence suite for tree::CompiledTree: the compiled flat-array path
// must be bit-identical to the pointer-tree path for every emulator over
// the random-tree property generator, and the precomputed aggregates must
// match a naive recomputation from the source Node heap.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "core/prophet.hpp"
#include "emul/ff.hpp"
#include "emul/suitability.hpp"
#include "memmodel/burden.hpp"
#include "memmodel/calibration.hpp"
#include "report/experiment.hpp"
#include "tree/compile.hpp"

#include "../property/random_trees.hpp"

namespace pprophet::tree {
namespace {

using core::Method;
using core::Paradigm;
using core::PredictOptions;

/// Top-level Sec nodes of `tree` in root-child order — the pointer-side
/// counterpart of CompiledTree's section table.
std::vector<const Node*> top_sections(const ProgramTree& tree) {
  std::vector<const Node*> out;
  for (const auto& child : tree.root->children()) {
    if (child->kind() == NodeKind::Sec) out.push_back(child.get());
  }
  return out;
}

PredictOptions grid_options(Method m, Paradigm p, runtime::OmpSchedule s,
                            std::uint64_t chunk) {
  PredictOptions o = report::paper_options(m);
  o.paradigm = p;
  o.schedule = s;
  o.chunk = chunk;
  return o;
}

TEST(CompiledTree, SectionPredictionsBitIdenticalAcrossFullGrid) {
  const CoreCount thread_counts[] = {1, 3, 8};
  const runtime::OmpSchedule schedules[] = {
      runtime::OmpSchedule::StaticCyclic, runtime::OmpSchedule::StaticBlock,
      runtime::OmpSchedule::Dynamic, runtime::OmpSchedule::Guided};
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    const ProgramTree t = random_tree(seed);
    const CompiledTree ct = CompiledTree::compile(t);
    const std::vector<const Node*> secs = top_sections(t);
    ASSERT_EQ(secs.size(), ct.section_count()) << "seed " << seed;
    for (const Method m : {Method::FastForward, Method::Suitability,
                           Method::Synthesizer, Method::GroundTruth}) {
      for (const Paradigm p : {Paradigm::OpenMP, Paradigm::CilkPlus}) {
        for (const runtime::OmpSchedule sch : schedules) {
          for (const std::uint64_t chunk : {1u, 4u}) {
            const PredictOptions o = grid_options(m, p, sch, chunk);
            for (const CoreCount threads : thread_counts) {
              for (std::uint32_t s = 0; s < ct.section_count(); ++s) {
                EXPECT_EQ(
                    core::predict_section_cycles(*secs[s], threads, o),
                    core::predict_section_cycles(ct, s, threads, o))
                    << "seed " << seed << " section " << s << " method "
                    << core::to_string(m) << " paradigm "
                    << core::to_string(p) << " schedule "
                    << runtime::to_string(sch) << " chunk " << chunk
                    << " threads " << threads;
              }
            }
          }
        }
      }
    }
  }
}

TEST(CompiledTree, PredictComposesExactlyAsPointerPath) {
  for (const std::uint64_t seed : {21u, 22u, 23u, 24u}) {
    const ProgramTree t = random_tree(seed);
    const CompiledTree ct = CompiledTree::compile(t);
    const PredictOptions o = report::paper_options(Method::Synthesizer);
    for (const CoreCount threads : {2u, 6u}) {
      // §IV-E reference composition from the pointer tree: top-level U glue
      // plus each section's pointer-path emulation times its repeat.
      Cycles parallel = 0;
      for (const auto& child : t.root->children()) {
        if (child->kind() == NodeKind::U) {
          parallel += child->length() * child->repeat();
        } else {
          parallel +=
              core::predict_section_cycles(*child, threads, o) *
              child->repeat();
        }
      }
      if (parallel == 0) parallel = 1;
      const core::SpeedupEstimate est = core::predict(ct, threads, o);
      EXPECT_EQ(est.serial_cycles, core::serial_cycles_of(t)) << seed;
      EXPECT_EQ(est.parallel_cycles, parallel) << seed;
    }
  }
}

TEST(CompiledTree, WholeTreeEmulatorsBitIdentical) {
  for (const std::uint64_t seed : {31u, 32u, 33u}) {
    const ProgramTree t = random_tree(seed);
    const CompiledTree ct = CompiledTree::compile(t);
    emul::FfConfig ff;
    ff.num_threads = 6;
    const emul::FfResult a = emul::emulate_ff(t, ff);
    const emul::FfResult b = emul::emulate_ff(ct, ff);
    EXPECT_EQ(a.parallel_cycles, b.parallel_cycles) << seed;
    EXPECT_EQ(a.serial_cycles, b.serial_cycles) << seed;
    emul::SuitabilityConfig suit;
    suit.num_threads = 6;
    const emul::FfResult c = emul::emulate_suitability(t, suit);
    const emul::FfResult d = emul::emulate_suitability(ct, suit);
    EXPECT_EQ(c.parallel_cycles, d.parallel_cycles) << seed;
    EXPECT_EQ(c.serial_cycles, d.serial_cycles) << seed;
  }
}

TEST(CompiledTree, MemoryModelPathBitIdentical) {
  const ProgramTree t = random_tree(41);
  ProgramTree annotated;
  annotated.root = t.root->clone();
  const std::vector<CoreCount> threads{2, 4, 8};
  memmodel::CalibrationOptions copts;
  copts.machine = report::paper_options(Method::Synthesizer).machine;
  const memmodel::BurdenModel model(memmodel::calibrate(copts));
  memmodel::annotate_burdens(annotated, model, threads);

  const CompiledTree ct = CompiledTree::compile(annotated);
  const std::vector<const Node*> secs = top_sections(annotated);
  ASSERT_EQ(secs.size(), ct.section_count());
  // Burden tables survive compilation verbatim...
  for (std::uint32_t s = 0; s < ct.section_count(); ++s) {
    for (const CoreCount n : threads) {
      EXPECT_EQ(ct.section_burden(s, n), secs[s]->burden(n)) << s << " " << n;
    }
    EXPECT_EQ(ct.section_burden(s, 64), 1.0);  // unset thread count
  }
  // ...and the burden-reading emulators stay bit-identical (PredM).
  for (const Method m : {Method::FastForward, Method::Synthesizer}) {
    PredictOptions o = report::paper_options(m);
    o.memory_model = true;
    for (const CoreCount n : threads) {
      for (std::uint32_t s = 0; s < ct.section_count(); ++s) {
        EXPECT_EQ(core::predict_section_cycles(*secs[s], n, o),
                  core::predict_section_cycles(ct, s, n, o))
            << core::to_string(m) << " threads " << n << " section " << s;
      }
    }
  }
}

/// Naive recursive reference for the per-repetition subtree sums.
struct NaiveSums {
  Cycles leaf_work = 0;
  Cycles lock_cycles = 0;
};
NaiveSums naive_sums(const Node& n) {
  NaiveSums s;
  if (n.kind() == NodeKind::U) {
    s.leaf_work = n.length();
  } else if (n.kind() == NodeKind::L) {
    s.leaf_work = n.length();
    s.lock_cycles = n.length();
  } else {
    for (const auto& c : n.children()) {
      const NaiveSums cs = naive_sums(*c);
      s.leaf_work += cs.leaf_work * c->repeat();
      s.lock_cycles += cs.lock_cycles * c->repeat();
    }
  }
  return s;
}

TEST(CompiledTree, AggregatesMatchNaiveRecomputation) {
  for (const std::uint64_t seed : {51u, 52u, 53u, 54u, 55u, 56u}) {
    const ProgramTree t = random_tree(seed);
    const CompiledTree ct = CompiledTree::compile(t);
    const std::vector<const Node*> secs = top_sections(t);
    ASSERT_EQ(secs.size(), ct.section_count()) << seed;
    for (std::uint32_t s = 0; s < ct.section_count(); ++s) {
      const Node& sec = *secs[s];
      const SectionAggregates& agg = ct.section_aggregates(s);
      EXPECT_EQ(agg.task_count, sec.logical_child_count()) << seed;
      const NaiveSums sums = naive_sums(sec);
      EXPECT_EQ(agg.total_leaf_work, sums.leaf_work) << seed;
      EXPECT_EQ(agg.lock_cycles, sums.lock_cycles) << seed;
      // One repetition of the section times its repeat is the Node heap's
      // serial_work (which folds the node's own repeat in).
      EXPECT_EQ(agg.total_leaf_work * sec.repeat(), sec.serial_work()) << seed;
      Cycles max_task = 0;
      for (const auto& task : sec.children()) {
        max_task = std::max(max_task, naive_sums(*task).leaf_work);
      }
      EXPECT_EQ(agg.max_task_length, max_task) << seed;
    }
    EXPECT_EQ(ct.serial_cycles(), core::serial_cycles_of(t)) << seed;
  }
}

TEST(CompiledTree, TaskTableMatchesLogicalIterationOrder) {
  const ProgramTree t = random_tree(61);
  const CompiledTree ct = CompiledTree::compile(t);
  for (NodeId n = 0; n < ct.node_count(); ++n) {
    if (ct.kind(n) != NodeKind::Sec) continue;
    const CompiledTree::TaskTable table = ct.tasks_of(n);
    // Reference: expand the RLE child list the way SectionIndex does.
    std::vector<NodeId> expanded;
    for (NodeId c = ct.first_child(n); c != kNoNode; c = ct.next_sibling(c)) {
      for (std::uint64_t r = 0; r < ct.repeat(c); ++r) expanded.push_back(c);
    }
    ASSERT_EQ(table.trip_count(), expanded.size());
    for (std::uint64_t i = 0; i < expanded.size(); ++i) {
      EXPECT_EQ(table.task_at(i), expanded[i]) << "sec " << n << " trip " << i;
    }
  }
}

TEST(CompiledTree, RunAccessorsConsistentWithTaskAt) {
  const ProgramTree t = random_tree(62);
  const CompiledTree ct = CompiledTree::compile(t);
  for (NodeId n = 0; n < ct.node_count(); ++n) {
    if (ct.kind(n) != NodeKind::Sec) continue;
    const CompiledTree::TaskTable table = ct.tasks_of(n);
    // run_count is the physical child count; trips/cum re-derive from the
    // children's repeats; every logical trip inside a run maps back to the
    // run's task through task_at.
    std::uint32_t runs = 0;
    std::uint64_t cum = 0;
    for (NodeId c = ct.first_child(n); c != kNoNode;
         c = ct.next_sibling(c), ++runs) {
      ASSERT_LT(runs, table.run_count());
      EXPECT_EQ(table.run_task(runs), c);
      EXPECT_EQ(table.run_trips(runs), ct.repeat(c));
      cum += ct.repeat(c);
      EXPECT_EQ(table.run_cum(runs), cum);
      EXPECT_EQ(table.task_at(cum - 1), c);
      EXPECT_EQ(table.task_at(cum - table.run_trips(runs)), c);
    }
    EXPECT_EQ(runs, table.run_count());
    EXPECT_EQ(cum, table.trip_count());
  }
}

TEST(CompiledTree, BlockFlagsMatchNaiveScan) {
  for (const unsigned seed : {63u, 64u, 65u}) {
    const ProgramTree t = random_tree(seed);
    const CompiledTree ct = CompiledTree::compile(t);
    ASSERT_TRUE(ct.has_block_layout());
    for (NodeId n = 0; n < ct.node_count(); ++n) {
      if (ct.kind(n) != NodeKind::Sec) continue;
      const SecBlockFlags* f = ct.sec_block_flags(n);
      ASSERT_NE(f, nullptr) << "sec " << n;
      // Reference: recursive scan over the compiled arrays.
      bool has_lock = false, has_nested = false;
      const std::function<void(NodeId)> scan = [&](NodeId x) {
        for (NodeId c = ct.first_child(x); c != kNoNode;
             c = ct.next_sibling(c)) {
          if (ct.kind(c) == NodeKind::L) has_lock = true;
          if (ct.kind(c) == NodeKind::Sec) has_nested = true;
          scan(c);
        }
      };
      scan(n);
      bool flat = true;
      for (NodeId task = ct.first_child(n); task != kNoNode;
           task = ct.next_sibling(task)) {
        for (NodeId c = ct.first_child(task); c != kNoNode;
             c = ct.next_sibling(c)) {
          if (ct.kind(c) != NodeKind::U) flat = false;
        }
      }
      EXPECT_EQ(f->subtree_has_lock != 0, has_lock) << "sec " << n;
      EXPECT_EQ(f->subtree_has_nested != 0, has_nested) << "sec " << n;
      EXPECT_EQ(f->tasks_flat != 0, flat) << "sec " << n;
    }
  }
}

// The block-layout side tables are derived data: compiling with and without
// them must produce identical digests (they key the sweep memo and the serve
// daemon's content store — a layout-dependent digest would fork the caches).
TEST(CompiledTree, BlockLayoutNeverAffectsDigests) {
  for (const unsigned seed : {71u, 72u, 73u}) {
    const ProgramTree t = random_tree(seed);
    CompileOptions with, without;
    with.block_layout = true;
    without.block_layout = false;
    const CompiledTree con = CompiledTree::compile(t, with);
    const CompiledTree coff = CompiledTree::compile(t, without);

    EXPECT_TRUE(con.has_block_layout());
    EXPECT_FALSE(coff.has_block_layout());
    EXPECT_EQ(con.tree_digest(), coff.tree_digest()) << seed;
    ASSERT_EQ(con.section_count(), coff.section_count());
    for (std::uint32_t s = 0; s < con.section_count(); ++s) {
      EXPECT_EQ(con.section_digest(s), coff.section_digest(s)) << seed;
      EXPECT_EQ(coff.sec_block_flags(con.section_node(s)), nullptr);
    }
    // The default single-argument compile() keeps the layout on.
    EXPECT_TRUE(CompiledTree::compile(t).has_block_layout());
  }
}

TEST(CompiledTree, DigestsAreDeterministicAndStructureSensitive) {
  const ProgramTree a = random_tree(71);
  const ProgramTree b = random_tree(71);
  const CompiledTree ca = CompiledTree::compile(a);
  const CompiledTree cb = CompiledTree::compile(b);
  EXPECT_EQ(ca.tree_digest(), cb.tree_digest());
  ASSERT_EQ(ca.section_count(), cb.section_count());
  for (std::uint32_t s = 0; s < ca.section_count(); ++s) {
    EXPECT_EQ(ca.section_digest(s), cb.section_digest(s)) << s;
  }

  // Node names never influence emulation, so they must not split digests.
  TreeBuilder named1, named2;
  for (const char* name : {"alpha", "beta"}) {
    TreeBuilder& nb = std::string(name) == "alpha" ? named1 : named2;
    nb.begin_sec(name);
    nb.begin_task(name);
    nb.u(500);
    nb.l(1, 40);
    nb.end_task();
    nb.end_sec();
  }
  const CompiledTree cn1 = CompiledTree::compile(named1.finish());
  const CompiledTree cn2 = CompiledTree::compile(named2.finish());
  EXPECT_EQ(cn1.tree_digest(), cn2.tree_digest());
  EXPECT_EQ(cn1.section_digest(0), cn2.section_digest(0));

  // A one-cycle length change anywhere must change the digests.
  ProgramTree mutated;
  mutated.root = a.root->clone();
  for (auto& child : mutated.root->mutable_children()) {
    if (child->kind() != NodeKind::Sec) continue;
    Node* task = child->child(0);
    task->child(0)->set_length(task->child(0)->length() + 1);
    break;
  }
  const CompiledTree cm = CompiledTree::compile(mutated);
  EXPECT_NE(ca.tree_digest(), cm.tree_digest());
  EXPECT_NE(ca.section_digest(0), cm.section_digest(0));
}

TEST(CompiledTree, MeasuredRootLengthWinsAsSerialDenominator) {
  ProgramTree t = random_tree(81);
  t.root->set_length(1'234'567);
  const CompiledTree ct = CompiledTree::compile(t);
  EXPECT_EQ(ct.serial_cycles(), 1'234'567u);
  EXPECT_EQ(ct.serial_cycles(), core::serial_cycles_of(t));
}

TEST(CompiledTree, RejectsInvalidTrees) {
  EXPECT_THROW(CompiledTree::compile(ProgramTree{}), std::invalid_argument);

  ProgramTree not_root;
  not_root.root = std::make_unique<Node>(NodeKind::Sec, "s");
  EXPECT_THROW(CompiledTree::compile(not_root), std::invalid_argument);

  ProgramTree bad_nesting;
  bad_nesting.root = std::make_unique<Node>(NodeKind::Root, "root");
  bad_nesting.root->add_child(std::make_unique<Node>(NodeKind::Task, "t"));
  EXPECT_THROW(CompiledTree::compile(bad_nesting), std::invalid_argument);
}

}  // namespace
}  // namespace pprophet::tree
