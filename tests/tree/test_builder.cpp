#include "tree/builder.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pprophet::tree {
namespace {

TEST(TreeBuilder, BuildsFigure4Tree) {
  // The example tree of the paper's Figure 4: a section "loop1" with an
  // outer iteration containing a lock and a nested section "loop2" with four
  // iterations of 40/50 cycles.
  TreeBuilder b;
  b.begin_sec("loop1");
  b.begin_task("t1");
  b.u(50);          // Compute(p1)
  b.l(1, 25);       // Compute(p2) under lock1
  b.begin_sec("loop2");
  b.begin_task("t2").u(50).end_task();
  b.begin_task("t2").u(50).end_task();
  b.begin_task("t2").u(50).end_task();
  b.begin_task("t2").u(40).end_task();
  b.end_sec(true);
  b.u(25);          // Compute(p5)
  b.end_task();
  b.end_sec(true);
  const ProgramTree t = b.finish();

  ASSERT_EQ(t.top_level().size(), 1u);
  const Node* loop1 = t.root->child(0);
  EXPECT_EQ(loop1->kind(), NodeKind::Sec);
  EXPECT_EQ(loop1->name(), "loop1");
  const Node* t1 = loop1->child(0);
  ASSERT_EQ(t1->children().size(), 4u);
  EXPECT_EQ(t1->child(0)->kind(), NodeKind::U);
  EXPECT_EQ(t1->child(1)->kind(), NodeKind::L);
  EXPECT_EQ(t1->child(2)->kind(), NodeKind::Sec);
  EXPECT_EQ(t1->child(3)->kind(), NodeKind::U);
  EXPECT_EQ(t1->child(2)->logical_child_count(), 4u);
  // Aggregates: loop2 = 190, t1 = 50+25+190+25 = 290.
  EXPECT_EQ(t1->child(2)->length(), 190u);
  EXPECT_EQ(t1->length(), 290u);
}

TEST(TreeBuilder, MismatchedEndThrows) {
  TreeBuilder b;
  b.begin_sec("s");
  EXPECT_THROW(b.end_task(), std::logic_error);
}

TEST(TreeBuilder, EndWithoutBeginThrows) {
  TreeBuilder b;
  EXPECT_THROW(b.end_sec(), std::logic_error);
}

TEST(TreeBuilder, FinishWithOpenNodesThrows) {
  TreeBuilder b;
  b.begin_sec("s");
  EXPECT_THROW(b.finish(), std::logic_error);
}

TEST(TreeBuilder, RepeatLastWithoutChildrenThrows) {
  TreeBuilder b;
  EXPECT_THROW(b.repeat_last(2), std::logic_error);
}

TEST(TreeBuilder, NowaitRecordedOnSection) {
  TreeBuilder b;
  b.begin_sec("s").begin_task("t").u(1).end_task().end_sec(false);
  const ProgramTree t = b.finish();
  EXPECT_FALSE(t.root->child(0)->barrier_at_end());
}

TEST(TreeBuilder, ExplicitLengthNotOverwritten) {
  TreeBuilder b;
  b.begin_sec("s");
  b.current()->set_length(777);  // e.g. measured wall length incl. overhead
  b.begin_task("t").u(10).end_task();
  b.end_sec();
  const ProgramTree t = b.finish();
  EXPECT_EQ(t.root->child(0)->length(), 777u);
}

TEST(TreeBuilder, TopLevelSerialNodes) {
  TreeBuilder b;
  b.u(100);
  b.begin_sec("s").begin_task("t").u(10).end_task().end_sec();
  b.u(200);
  const ProgramTree t = b.finish();
  ASSERT_EQ(t.top_level().size(), 3u);
  EXPECT_EQ(t.top_level()[0]->kind(), NodeKind::U);
  EXPECT_EQ(t.top_level()[1]->kind(), NodeKind::Sec);
  EXPECT_EQ(t.total_serial_cycles(), 310u);
}

TEST(FillAggregateLengths, RecursesThroughRepeats) {
  TreeBuilder b;
  b.begin_sec("outer");
  b.begin_task("it");
  b.u(10);
  b.begin_sec("inner");
  b.begin_task("jt").u(5).end_task().repeat_last(4);
  b.end_sec();
  b.end_task();
  b.repeat_last(3);
  b.end_sec();
  const ProgramTree t = b.finish();
  // inner = 20; task = 30; outer = 3 * 30 = 90.
  EXPECT_EQ(t.root->child(0)->length(), 90u);
  EXPECT_EQ(t.total_serial_cycles(), 90u);
}

}  // namespace
}  // namespace pprophet::tree
