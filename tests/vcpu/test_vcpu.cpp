#include "vcpu/vcpu.hpp"

#include <gtest/gtest.h>

#include "annotate/annotations.hpp"
#include "trace/profiler.hpp"

namespace pprophet::vcpu {
namespace {

TEST(VirtualCpu, ComputeAdvancesCyclesAndInstructions) {
  VirtualCpu cpu;
  cpu.compute(1000);
  EXPECT_EQ(cpu.instructions(), 1000u);
  EXPECT_EQ(cpu.cycles(), 1000u);  // cpi_base == 1
}

TEST(VirtualCpu, FractionalCpiAccumulates) {
  CostModel cost;
  cost.cpi_base = 0.5;
  VirtualCpu cpu({}, cost);
  cpu.compute(1);
  cpu.compute(1);
  cpu.compute(1);
  cpu.compute(1);
  EXPECT_EQ(cpu.cycles(), 2u);  // 4 * 0.5
}

TEST(VirtualCpu, ColdAccessPaysDramLatency) {
  CostModel cost;
  VirtualCpu cpu({}, cost);
  int x = 0;
  cpu.load(&x, sizeof x);
  EXPECT_EQ(cpu.cycles(), 1u + cost.dram);
  EXPECT_EQ(cpu.llc_misses(), 1u);
  cpu.load(&x, sizeof x);  // L1 hit now
  EXPECT_EQ(cpu.cycles(), 2u + cost.dram);
  EXPECT_EQ(cpu.llc_misses(), 1u);
}

TEST(VirtualCpu, FakeDelayTouchesNoCaches) {
  VirtualCpu cpu;
  cpu.fake_delay(12345);
  EXPECT_EQ(cpu.cycles(), 12345u);
  EXPECT_EQ(cpu.instructions(), 12345u);
  EXPECT_EQ(cpu.llc_misses(), 0u);
}

TEST(VirtualCpu, InstrumentedArrayRoundTrips) {
  VirtualCpu cpu;
  InstrumentedArray<double> a(cpu, 100, 1.5);
  EXPECT_DOUBLE_EQ(a.get(7), 1.5);
  a.set(7, 2.5);
  EXPECT_DOUBLE_EQ(a.get(7), 2.5);
  a.update(7, [](double v) { return v * 2; });
  EXPECT_DOUBLE_EQ(a.raw(7), 5.0);
  EXPECT_GT(cpu.instructions(), 0u);
}

TEST(VirtualCpu, StreamingLargeArrayMissesLlc) {
  cachesim::CacheConfig cfg;
  cfg.llc = {64 * 1024, 4};  // tiny LLC so the test stays fast
  cfg.l1 = {4 * 1024, 2};
  cfg.l2 = {16 * 1024, 4};
  VirtualCpu cpu(cfg, {});
  InstrumentedArray<double> a(cpu, 64 * 1024);  // 512 KB >> 64 KB LLC
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < a.size(); ++i) a.set(i, 1.0);
  }
  const double mpi = static_cast<double>(cpu.llc_misses()) /
                     static_cast<double>(cpu.instructions());
  // 8 doubles per line -> ~1/8 misses per access on both passes.
  EXPECT_NEAR(mpi, 0.125, 0.02);
}

TEST(VirtualCpu, RepeatedSmallArrayHitsCaches) {
  VirtualCpu cpu;
  InstrumentedArray<double> a(cpu, 512);  // 4 KB, fits L1
  for (int pass = 0; pass < 200; ++pass) {
    for (std::size_t i = 0; i < a.size(); ++i) a.update(i, [](double v) { return v + 1; });
  }
  const double mpi = static_cast<double>(cpu.llc_misses()) /
                     static_cast<double>(cpu.instructions());
  EXPECT_LT(mpi, 0.001);  // paper's assumption-5 threshold: effectively 0
}

TEST(VcpuCounterSource, WindowsDeltaTheCounters) {
  VirtualCpu cpu;
  VcpuCounterSource src(cpu);
  cpu.compute(100);
  src.start();
  cpu.compute(50);
  int x = 0;
  cpu.load(&x, sizeof x);
  const tree::SectionCounters c = src.stop();
  EXPECT_EQ(c.instructions, 51u);
  EXPECT_EQ(c.llc_misses, 1u);
  EXPECT_EQ(c.cycles, 50u + 1u + CostModel{}.dram);
}

// End-to-end: an annotated kernel running on the vcpu produces a tree whose
// top-level section carries cache-derived counters.
TEST(VcpuIntegration, AnnotatedKernelProducesCountersOnTree) {
  cachesim::CacheConfig cfg;
  cfg.l1 = {4 * 1024, 2};
  cfg.l2 = {16 * 1024, 4};
  cfg.llc = {64 * 1024, 4};
  VirtualCpu cpu(cfg, {});
  VcpuCounterSource counters(cpu);
  trace::IntervalProfiler profiler(cpu.clock(), &counters);
  annotate::ScopedAnnotationTarget scope(profiler);

  InstrumentedArray<double> data(cpu, 32 * 1024);  // 256 KB
  PAR_SEC_BEGIN("stream");
  for (int i = 0; i < 4; ++i) {
    PAR_TASK_BEGIN("chunk");
    const std::size_t n = data.size() / 4;
    for (std::size_t j = i * n; j < (i + 1) * n; ++j) {
      data.set(j, 3.0);
      cpu.compute(2);
    }
    PAR_TASK_END();
  }
  PAR_SEC_END(true);
  const tree::ProgramTree t = profiler.finish();

  const tree::Node* sec = t.root->child(0);
  ASSERT_NE(sec->counters(), nullptr);
  EXPECT_GT(sec->counters()->llc_misses, 1000u);
  EXPECT_GT(sec->counters()->mpi(), 0.01);
  EXPECT_GT(sec->counters()->traffic_mbps(), 0.0);
  // All four chunks should have near-equal measured lengths (SPMD).
  const Cycles l0 = sec->child(0)->length();
  for (std::size_t i = 1; i < sec->children().size(); ++i) {
    EXPECT_NEAR(static_cast<double>(sec->child(i)->length()),
                static_cast<double>(l0), 0.10 * static_cast<double>(l0));
  }
}

TEST(VirtualCpu, WriteStreamGeneratesWritebackTraffic) {
  cachesim::CacheConfig cfg;
  cfg.l1 = {4 * 1024, 2};
  cfg.l2 = {16 * 1024, 4};
  cfg.llc = {64 * 1024, 4};
  VirtualCpu cpu(cfg, {});
  InstrumentedArray<double> a(cpu, 64 * 1024);  // 512 KB
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < a.size(); ++i) a.set(i, 1.0);
  }
  EXPECT_GT(cpu.llc_writebacks(), cpu.llc_misses() / 4);
  // Pure reads of fresh memory produce none.
  VirtualCpu reader(cfg, {});
  InstrumentedArray<double> b(reader, 1);
  std::vector<double> host(64 * 1024, 0.0);
  for (const double& v : host) reader.load(&v, sizeof v);
  EXPECT_EQ(reader.llc_writebacks(), 0u);
}

TEST(VcpuCounterSource, CapturesWritebackDelta) {
  cachesim::CacheConfig cfg;
  cfg.l1 = {4 * 1024, 2};
  cfg.l2 = {16 * 1024, 4};
  cfg.llc = {64 * 1024, 4};
  VirtualCpu cpu(cfg, {});
  InstrumentedArray<double> a(cpu, 64 * 1024);
  VcpuCounterSource src(cpu);
  src.start();
  for (std::size_t i = 0; i < a.size(); ++i) a.set(i, 2.0);
  for (std::size_t i = 0; i < a.size(); ++i) a.set(i, 3.0);
  const tree::SectionCounters c = src.stop();
  EXPECT_GT(c.llc_writebacks, 0u);
  // Traffic now includes the write direction.
  tree::SectionCounters no_wb = c;
  no_wb.llc_writebacks = 0;
  EXPECT_GT(c.traffic_mbps(), no_wb.traffic_mbps());
}

}  // namespace
}  // namespace pprophet::vcpu
