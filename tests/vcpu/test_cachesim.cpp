#include "cachesim/cache.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pprophet::cachesim {
namespace {

TEST(Cache, ColdMissesThenHits) {
  Cache c({1024, 2}, 64);  // 16 lines, 8 sets x 2 ways
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_EQ(c.stats().accesses, 3u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  Cache c({128, 2}, 64);  // 2 lines... too small; use 256B: 4 lines, 2 sets x 2 ways
  Cache c2({256, 2}, 64);
  // Set 0 holds line addrs 0, 2, 4, ... (2 sets). Fill set 0 with lines 0, 2.
  EXPECT_FALSE(c2.access(0));
  EXPECT_FALSE(c2.access(2));
  EXPECT_TRUE(c2.access(0));   // 0 is now MRU
  EXPECT_FALSE(c2.access(4));  // evicts 2 (LRU)
  EXPECT_TRUE(c2.access(0));
  EXPECT_FALSE(c2.access(2));  // 2 was evicted
}

TEST(Cache, DistinctSetsDoNotConflict) {
  Cache c({256, 2}, 64);  // 2 sets x 2 ways
  EXPECT_FALSE(c.access(0));  // set 0
  EXPECT_FALSE(c.access(1));  // set 1
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(1));
}

TEST(Cache, FlushDropsContents) {
  Cache c({1024, 2}, 64);
  c.access(5);
  c.flush();
  EXPECT_FALSE(c.access(5));
}

TEST(Cache, RejectsBadConfigs) {
  EXPECT_THROW(Cache({0, 2}, 64), std::invalid_argument);
  EXPECT_THROW(Cache({1024, 0}, 64), std::invalid_argument);
  EXPECT_THROW(Cache({192, 1}, 64), std::invalid_argument);  // 3 sets: not pow2
}

TEST(Hierarchy, MissesCascadeThroughLevels) {
  CacheConfig cfg;
  cfg.l1 = {1024, 2};
  cfg.l2 = {4096, 2};
  cfg.llc = {16384, 4};
  CacheHierarchy h(cfg);
  EXPECT_EQ(h.access(0), CacheHierarchy::kDram);  // cold: miss everywhere
  EXPECT_EQ(h.access(0), CacheHierarchy::kL1);    // now in L1
  EXPECT_EQ(h.level(1).misses, 1u);
  EXPECT_EQ(h.level(2).misses, 1u);
  EXPECT_EQ(h.level(3).misses, 1u);
  EXPECT_EQ(h.llc_misses(), 1u);
}

TEST(Hierarchy, L1EvictionHitsL2) {
  CacheConfig cfg;
  cfg.l1 = {128, 1};   // 2 lines, direct-mapped: 2 sets
  cfg.l2 = {4096, 4};
  cfg.llc = {16384, 4};
  CacheHierarchy h(cfg);
  h.access(0);             // line 0 -> L1 set 0
  h.access(2 * 64);        // line 2 -> also L1 set 0, evicts line 0
  EXPECT_EQ(h.access(0), CacheHierarchy::kL2);  // still in L2
}

TEST(Hierarchy, AccessRangeTouchesEveryLine) {
  CacheHierarchy h;
  std::array<std::uint64_t, 5> hits{};
  h.access_range(0, 64 * 10, hits);  // exactly 10 lines
  EXPECT_EQ(hits[CacheHierarchy::kDram], 10u);
  hits = {};
  h.access_range(0, 64 * 10, hits);
  EXPECT_EQ(hits[CacheHierarchy::kL1], 10u);
}

TEST(Hierarchy, UnalignedRangeSpansExtraLine) {
  CacheHierarchy h;
  std::array<std::uint64_t, 5> hits{};
  h.access_range(60, 8, hits);  // crosses a line boundary
  EXPECT_EQ(hits[CacheHierarchy::kDram], 2u);
}

TEST(Hierarchy, ZeroByteRangeIsNoop) {
  CacheHierarchy h;
  std::array<std::uint64_t, 5> hits{};
  h.access_range(0, 0, hits);
  for (auto v : hits) EXPECT_EQ(v, 0u);
}

TEST(Hierarchy, WorkingSetLargerThanLlcThrashes) {
  CacheConfig cfg;
  cfg.l1 = {1024, 2};
  cfg.l2 = {4096, 4};
  cfg.llc = {16 * 1024, 4};
  CacheHierarchy h(cfg);
  // Stream over 1 MB twice: both passes miss the 16 KB LLC.
  const std::uint64_t lines = (1 << 20) / 64;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t i = 0; i < lines; ++i) h.access(i * 64);
  }
  EXPECT_GT(h.level(3).miss_ratio(), 0.95);
}

TEST(Hierarchy, SmallWorkingSetStaysInL1) {
  CacheHierarchy h;  // default Westmere-like sizes
  for (int pass = 0; pass < 10; ++pass) {
    for (std::uint64_t i = 0; i < 16 * 1024; i += 64) h.access(i);
  }
  // 16 KB fits in the 32 KB L1: only the cold pass misses.
  EXPECT_EQ(h.level(1).misses, 256u);
  EXPECT_EQ(h.level(1).accesses, 2560u);
}

TEST(Writebacks, DirtyEvictionsAreCounted) {
  Cache c({256, 2}, 64);  // 2 sets x 2 ways
  // Fill set 0 with dirty lines 0 and 2, then force both out.
  c.access(0, /*write=*/true);
  c.access(2, /*write=*/true);
  c.access(4, /*write=*/false);  // evicts line 0 (dirty)
  c.access(6, /*write=*/false);  // evicts line 2 (dirty)
  EXPECT_EQ(c.stats().writebacks, 2u);
}

TEST(Writebacks, CleanEvictionsAreFree) {
  Cache c({256, 2}, 64);
  c.access(0, false);
  c.access(2, false);
  c.access(4, false);
  c.access(6, false);
  EXPECT_EQ(c.stats().writebacks, 0u);
}

TEST(Writebacks, RewriteDoesNotDoubleCount) {
  Cache c({256, 2}, 64);
  c.access(0, true);
  c.access(0, true);  // still one dirty line
  c.access(2, true);
  c.access(4, false);
  c.access(6, false);
  EXPECT_EQ(c.stats().writebacks, 2u);
}

TEST(Writebacks, HierarchyExposesLlcWritebacks) {
  CacheConfig cfg;
  cfg.l1 = {1024, 2};
  cfg.l2 = {4096, 2};
  cfg.llc = {16384, 4};
  CacheHierarchy h(cfg);
  // Write-stream far beyond the LLC: nearly every line comes back out dirty.
  const std::uint64_t lines = (1 << 20) / 64;
  for (std::uint64_t i = 0; i < lines; ++i) h.access(i * 64, true);
  EXPECT_GT(h.llc_writebacks(), lines / 2);
  // Read streams produce none.
  CacheHierarchy clean(cfg);
  for (std::uint64_t i = 0; i < lines; ++i) clean.access(i * 64, false);
  EXPECT_EQ(clean.llc_writebacks(), 0u);
}

}  // namespace
}  // namespace pprophet::cachesim
