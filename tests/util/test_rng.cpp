#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pprophet::util {
namespace {

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, UniformU64StaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.uniform_u64(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Xoshiro256, UniformU64SingletonRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_u64(5, 5), 5u);
  }
}

TEST(Xoshiro256, UniformU64CoversRange) {
  Xoshiro256 rng(3);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 8000; ++i) {
    seen[rng.uniform_u64(0, 7)]++;
  }
  for (int count : seen) {
    EXPECT_GT(count, 700);  // roughly uniform: expect ~1000 each
    EXPECT_LT(count, 1300);
  }
}

TEST(Xoshiro256, UniformDoubleInUnitInterval) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256, UniformDoubleRange) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_double(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Xoshiro256, BernoulliRespectsProbability) {
  Xoshiro256 rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Xoshiro256, BernoulliExtremes) {
  Xoshiro256 rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

}  // namespace
}  // namespace pprophet::util
