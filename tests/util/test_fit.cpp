#include "util/fit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace pprophet::util {
namespace {

TEST(FitLinear, ExactLine) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(2.5 * x - 1.0);
  const LinearFit f = fit_linear(xs, ys);
  EXPECT_NEAR(f.a, 2.5, 1e-9);
  EXPECT_NEAR(f.b, -1.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
  EXPECT_NEAR(f(10.0), 24.0, 1e-9);
}

TEST(FitLinear, NoisyLineStillClose) {
  const std::vector<double> xs{1, 2, 3, 4, 5, 6};
  const std::vector<double> ys{3.1, 4.9, 7.2, 8.8, 11.1, 12.9};
  const LinearFit f = fit_linear(xs, ys);
  EXPECT_NEAR(f.a, 2.0, 0.1);
  EXPECT_NEAR(f.b, 1.0, 0.3);
  EXPECT_GT(f.r2, 0.99);
}

TEST(FitLinear, DegenerateSinglePoint) {
  const std::vector<double> xs{2.0};
  const std::vector<double> ys{7.0};
  const LinearFit f = fit_linear(xs, ys);
  EXPECT_DOUBLE_EQ(f.a, 0.0);
  EXPECT_DOUBLE_EQ(f.b, 7.0);
}

TEST(FitLinear, VerticalDataFallsBackToMean) {
  const std::vector<double> xs{3, 3, 3};
  const std::vector<double> ys{1, 2, 3};
  const LinearFit f = fit_linear(xs, ys);
  EXPECT_DOUBLE_EQ(f.a, 0.0);
  EXPECT_DOUBLE_EQ(f.b, 2.0);
}

TEST(FitLog, ExactLogCurve) {
  // Mirrors the paper's Eq. (6) form: δ4 = (5756·ln(δ) − 38805)/4.
  const std::vector<double> xs{2000, 4000, 8000, 16000, 32000};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(5756.0 * std::log(x) - 38805.0);
  const LogFit f = fit_log(xs, ys);
  EXPECT_NEAR(f.a, 5756.0, 1e-6);
  EXPECT_NEAR(f.b, -38805.0, 1e-4);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(FitPower, ExactPowerCurve) {
  // Mirrors the paper's Eq. (7) form: ω = 101481·δ^-0.964.
  const std::vector<double> xs{2000, 3000, 5000, 9000, 15000};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(101481.0 * std::pow(x, -0.964));
  const PowerFit f = fit_power(xs, ys);
  EXPECT_NEAR(f.a, 101481.0, 1.0);
  EXPECT_NEAR(f.b, -0.964, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(FitPower, EvaluatesAtNewPoints) {
  const std::vector<double> xs{1, 2, 4, 8};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.0 * std::pow(x, 0.5));
  const PowerFit f = fit_power(xs, ys);
  EXPECT_NEAR(f(16.0), 12.0, 1e-9);
}

}  // namespace
}  // namespace pprophet::util
