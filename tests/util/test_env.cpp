#include "util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace pprophet::util {
namespace {

struct EnvGuard {
  explicit EnvGuard(const char* name) : name_(name) { unsetenv(name); }
  ~EnvGuard() { unsetenv(name_); }
  void set(const char* v) { setenv(name_, v, 1); }
  const char* name_;
};

TEST(EnvLong, FallbackWhenUnset) {
  EnvGuard g("PP_TEST_LONG");
  EXPECT_EQ(env_long("PP_TEST_LONG", 42), 42);
}

TEST(EnvLong, ParsesInteger) {
  EnvGuard g("PP_TEST_LONG");
  g.set("123");
  EXPECT_EQ(env_long("PP_TEST_LONG", 42), 123);
  g.set("-7");
  EXPECT_EQ(env_long("PP_TEST_LONG", 42), -7);
}

TEST(EnvLong, FallbackOnGarbage) {
  EnvGuard g("PP_TEST_LONG");
  g.set("12abc");
  EXPECT_EQ(env_long("PP_TEST_LONG", 42), 42);
  g.set("");
  EXPECT_EQ(env_long("PP_TEST_LONG", 42), 42);
}

TEST(EnvFlag, Defaults) {
  EnvGuard g("PP_TEST_FLAG");
  EXPECT_FALSE(env_flag("PP_TEST_FLAG"));
  EXPECT_TRUE(env_flag("PP_TEST_FLAG", true));
}

TEST(EnvFlag, RecognizesOffValues) {
  EnvGuard g("PP_TEST_FLAG");
  for (const char* off : {"0", "false", "off"}) {
    g.set(off);
    EXPECT_FALSE(env_flag("PP_TEST_FLAG", true)) << off;
  }
  g.set("1");
  EXPECT_TRUE(env_flag("PP_TEST_FLAG"));
  g.set("yes");
  EXPECT_TRUE(env_flag("PP_TEST_FLAG"));
}

}  // namespace
}  // namespace pprophet::util
