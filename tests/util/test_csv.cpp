#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace pprophet::util {
namespace {

TEST(Csv, HeaderOnly) {
  CsvWriter w({"a", "b"});
  EXPECT_EQ(w.to_string(), "a,b\n");
}

TEST(Csv, PlainRows) {
  CsvWriter w({"x", "y"});
  w.add_row({"1", "2"});
  w.add_row({"3", "4"});
  EXPECT_EQ(w.to_string(), "x,y\n1,2\n3,4\n");
}

TEST(Csv, ShortRowsPadded) {
  CsvWriter w({"a", "b", "c"});
  w.add_row({"only"});
  EXPECT_EQ(w.to_string(), "a,b,c\nonly,,\n");
}

TEST(Csv, QuotesFieldsWithCommas) {
  CsvWriter w({"sched"});
  w.add_row({"dynamic,1"});
  EXPECT_EQ(w.to_string(), "sched\n\"dynamic,1\"\n");
}

TEST(Csv, EscapesEmbeddedQuotes) {
  CsvWriter w({"q"});
  w.add_row({"say \"hi\""});
  EXPECT_EQ(w.to_string(), "q\n\"say \"\"hi\"\"\"\n");
}

TEST(Csv, QuotesNewlines) {
  CsvWriter w({"n"});
  w.add_row({"a\nb"});
  EXPECT_EQ(w.to_string(), "n\n\"a\nb\"\n");
}

TEST(Csv, WritesFile) {
  CsvWriter w({"v"});
  w.add_row({"42"});
  const std::string path = testing::TempDir() + "pp_csv_test.csv";
  ASSERT_TRUE(w.write(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "v");
  std::getline(f, line);
  EXPECT_EQ(line, "42");
  std::remove(path.c_str());
}

TEST(Csv, WriteToBadPathFails) {
  CsvWriter w({"v"});
  EXPECT_FALSE(w.write("/nonexistent-dir-zzz/x.csv"));
}

}  // namespace
}  // namespace pprophet::util
