#include "util/fnv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "tree/compile.hpp"
#include "tree/serialize.hpp"

namespace pprophet::util {
namespace {

// The FNV helpers back persisted identifiers: serve stored-profile content
// keys and the compiled-tree digests used as sweep memo and serve
// result-cache keys. These tests pin the digests byte-for-byte against
// values captured from the pre-refactor duplicated implementations
// (tree/compile.cpp and serve/profile_store.cpp each had a private copy);
// any change here invalidates stored keys and is a format break.

TEST(Fnv64, StreamingAccumulatorBasics) {
  Fnv64 f;
  EXPECT_EQ(f.h, kFnvOffset);
  f.byte(0x61);  // 'a'
  EXPECT_EQ(f.h, (kFnvOffset ^ 0x61u) * kFnvPrime);

  // u64 feeds bytes little-endian: hashing 'a' then seven zero bytes must
  // equal u64(0x61).
  Fnv64 by_bytes;
  by_bytes.byte(0x61);
  for (int i = 0; i < 7; ++i) by_bytes.byte(0);
  Fnv64 by_u64;
  by_u64.u64(0x61);
  EXPECT_EQ(by_bytes.h, by_u64.h);
}

TEST(Fnv64, F64HashesBitPattern) {
  Fnv64 a, b;
  a.f64(1.0);
  b.u64(0x3FF0000000000000ULL);
  EXPECT_EQ(a.h, b.h);
  // -0.0 and 0.0 differ as bit patterns, so their digests must too.
  Fnv64 pz, nz;
  pz.f64(0.0);
  nz.f64(-0.0);
  EXPECT_NE(pz.h, nz.h);
}

TEST(FnvTwoLane, PinnedContentKeys) {
  // Captured from serve/profile_store.cpp's original implementation.
  EXPECT_EQ(fnv64_two_lane_hex(""), "cbf29ce4842223256c62272e07bb0142");
  EXPECT_EQ(fnv64_two_lane_hex("PPTB"), "acb6af19a3f51abf3896bd6a6e783bcc");
  EXPECT_EQ(fnv64_two_lane_hex("the quick brown fox"),
            "59aeb7b40bd8c1313b929abf373ec829");
}

TEST(FnvTwoLane, LanesAreIndependent) {
  // Same bytes permuted: lane 2 mixes position, so the key must change.
  EXPECT_NE(fnv64_two_lane_hex("ab"), fnv64_two_lane_hex("ba"));
  // Length folds into lane 1: a trailing NUL is not a no-op.
  EXPECT_NE(fnv64_two_lane_hex(std::string("x")),
            fnv64_two_lane_hex(std::string("x\0", 2)));
}

TEST(FnvTreeDigests, PinnedCompiledTreeDigests) {
  // Captured from tree/compile.cpp's original private FNV accumulator on
  // this fixed tree (counters + burden tables exercise every typed helper).
  const std::string text =
      "Root root len=1000\n"
      "  Sec loop len=800 N=4000 T=800 D=40 W=10\n"
      "    Task t len=100 rep=8\n"
      "      U U len=100\n"
      "  U U len=200\n";
  tree::ProgramTree t = tree::from_text(text);
  t.root->child(0)->set_burden(2, 1.25);
  t.root->child(0)->set_burden(4, 1.5);
  const tree::CompiledTree ct = tree::CompiledTree::compile(t);
  EXPECT_EQ(ct.tree_digest(), 8593185789951458264ULL);
  ASSERT_GE(ct.section_count(), 1u);
  EXPECT_EQ(ct.section_digest(0), 5127205614884433980ULL);
}

}  // namespace
}  // namespace pprophet::util
