#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/ascii_plot.hpp"

namespace pprophet::util {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 12345 |"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(Table, RuleSeparatesSections) {
  Table t({"x"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  std::ostringstream os;
  t.print(os);
  // 5 rules: top, under header, mid, bottom... count '+---' lines >= 4
  int rules = 0;
  std::istringstream is(os.str());
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 4);
}

TEST(Format, FixedPoint) {
  EXPECT_EQ(fmt_f(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_f(2.0, 0), "2");
}

TEST(Format, Percent) {
  EXPECT_EQ(fmt_pct(0.043, 1), "4.3%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
}

TEST(Format, ThousandsSeparators) {
  EXPECT_EQ(fmt_i(0), "0");
  EXPECT_EQ(fmt_i(999), "999");
  EXPECT_EQ(fmt_i(1000), "1,000");
  EXPECT_EQ(fmt_i(13500000), "13,500,000");
  EXPECT_EQ(fmt_i(-1234567), "-1,234,567");
}

TEST(Format, Bytes) {
  EXPECT_EQ(fmt_bytes(512), "512.0 B");
  EXPECT_EQ(fmt_bytes(1024), "1.0 KB");
  EXPECT_EQ(fmt_bytes(13ull * 1024 * 1024 * 1024 + 512ull * 1024 * 1024),
            "13.5 GB");
}

TEST(ScatterPlot, RendersPointsAndLegend) {
  ScatterPlot p("test plot");
  const double xs[] = {1.0, 2.0, 3.0};
  const double ys[] = {1.1, 2.2, 2.9};
  p.add_series("pred", 'o', xs, ys);
  std::ostringstream os;
  p.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("test plot"), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find("'o' = pred"), std::string::npos);
}

TEST(SeriesChart, RendersSeries) {
  SeriesChart c("speedup", {2, 4, 6, 8});
  c.add_series("real", '#', {1.8, 3.2, 4.1, 4.5});
  c.add_series("pred", 'o', {1.9, 3.3, 4.0, 4.4});
  std::ostringstream os;
  c.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("speedup"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("'o' = pred"), std::string::npos);
}

}  // namespace
}  // namespace pprophet::util
