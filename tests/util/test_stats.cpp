#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace pprophet::util {
namespace {

TEST(Summarize, Empty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, SingleValue) {
  const std::array<double, 1> xs{3.5};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
}

TEST(Summarize, KnownValues) {
  const std::array<double, 4> xs{1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, 1.1180339887, 1e-9);
}

TEST(Percentile, Median) {
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 50.0), 3.0);
}

TEST(Percentile, Interpolates) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25.0), 2.5);
}

TEST(Percentile, Extremes) {
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 100.0), 9.0);
}

TEST(Percentile, Empty) { EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0); }

TEST(RelativeError, Basics) {
  EXPECT_DOUBLE_EQ(relative_error(1.2, 1.0), 0.2);
  EXPECT_DOUBLE_EQ(relative_error(0.8, 1.0), 0.2);
  EXPECT_DOUBLE_EQ(relative_error(2.0, 2.0), 0.0);
}

TEST(RelativeError, ZeroReal) {
  EXPECT_DOUBLE_EQ(relative_error(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(relative_error(0.5, 0.0), 0.5);
}

TEST(ErrorStats, PerfectPrediction) {
  const std::array<double, 3> p{1, 2, 3};
  const ErrorStats es = error_stats(p, p);
  EXPECT_EQ(es.count, 3u);
  EXPECT_DOUBLE_EQ(es.mean_error, 0.0);
  EXPECT_DOUBLE_EQ(es.max_error, 0.0);
  EXPECT_DOUBLE_EQ(es.within_20pct, 1.0);
}

TEST(ErrorStats, MixedErrors) {
  const std::array<double, 2> pred{1.1, 3.0};
  const std::array<double, 2> real{1.0, 2.0};
  const ErrorStats es = error_stats(pred, real);
  EXPECT_NEAR(es.mean_error, (0.1 + 0.5) / 2, 1e-12);
  EXPECT_NEAR(es.max_error, 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(es.within_20pct, 0.5);
}

TEST(Pearson, PerfectCorrelation) {
  const std::array<double, 4> xs{1, 2, 3, 4};
  const std::array<double, 4> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Pearson, PerfectAntiCorrelation) {
  const std::array<double, 3> xs{1, 2, 3};
  const std::array<double, 3> ys{3, 2, 1};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesIsZero) {
  const std::array<double, 3> xs{1, 2, 3};
  const std::array<double, 3> ys{5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

}  // namespace
}  // namespace pprophet::util
