#include <gtest/gtest.h>

#include "memmodel/burden.hpp"
#include "memmodel/calibration.hpp"
#include "memmodel/classify.hpp"
#include "tree/builder.hpp"

namespace pprophet::memmodel {
namespace {

CalibrationOptions quick_opts() {
  CalibrationOptions o;
  o.machine.cores = 12;
  o.machine.bandwidth.saturation_mbps = 1200.0;
  o.machine.bandwidth.log_alpha = 0.22;
  o.thread_counts = {2, 4, 8, 12};
  o.mem_cycles = 100'000;
  return o;
}

class CalibrationTest : public ::testing::Test {
 protected:
  static const Calibration& cal() {
    static const Calibration c = calibrate(quick_opts());
    return c;
  }
};

TEST_F(CalibrationTest, PsiIdentityBelowContention) {
  // 2 threads at 100 MB/s each: aggregate 200 << 1200 saturation.
  EXPECT_DOUBLE_EQ(cal().psi(2, 100.0), 100.0);
}

TEST_F(CalibrationTest, PsiShrinksAchievedTrafficUnderContention) {
  // 8 threads each demanding 300 MB/s: aggregate 2400 >> 1200 saturation.
  const double achieved = cal().psi(8, 300.0);
  EXPECT_LT(achieved, 300.0);
  EXPECT_GT(achieved, 1200.0 / 8.0 * 0.5);  // sane lower bound
}

TEST_F(CalibrationTest, PsiMoreThreadsLessPerThreadTraffic) {
  // Two threads at 300 MB/s (600 aggregate) never contend on this machine,
  // so only the clearly saturated counts order strictly.
  const double d = 300.0;
  EXPECT_GE(cal().psi(2, d), cal().psi(8, d));
  EXPECT_GT(cal().psi(8, d), cal().psi(12, d));
}

TEST_F(CalibrationTest, PsiFitsHaveSamplesAndPickAForm) {
  for (const PsiFit& f : cal().psi_fits()) {
    EXPECT_FALSE(f.samples.empty());
    // Contended-region fit quality should be decent on the DES.
    const double r2 = f.use_linear ? f.linear.r2 : f.log.r2;
    EXPECT_GT(r2, 0.8) << "t=" << f.threads;
  }
}

TEST_F(CalibrationTest, PhiPowerLawHasNegativeExponentNearMinusOne) {
  // The paper's Eq. (7) exponent is -0.964; omega*delta conservation makes
  // ~-1 the expected shape. The fit mixes thread counts, so allow slack.
  const util::PowerFit& phi = cal().phi_fit();
  EXPECT_LT(phi.b, -0.4);
  EXPECT_GT(phi.b, -2.0);
  EXPECT_GT(phi.r2, 0.5);
}

TEST_F(CalibrationTest, PhiNeverBelowUnloadedStall) {
  EXPECT_GE(cal().phi(1e9, 1e9), 200.0);
  EXPECT_DOUBLE_EQ(cal().phi(100.0, 100.0), 200.0);  // uncontended
}

TEST_F(CalibrationTest, StallGrowsWithContention) {
  // Deeper saturation (lower achieved per-thread traffic from the same
  // demand) must mean a larger per-access stall.
  const double d = 320.0;
  const double a4 = cal().psi(4, d);
  const double a12 = cal().psi(12, d);
  EXPECT_GT(cal().phi(a12, d), cal().phi(a4, d));
}

// --- burden factors ---

tree::SectionCounters counters(std::uint64_t n, Cycles t, std::uint64_t d) {
  tree::SectionCounters c;
  c.instructions = n;
  c.cycles = t;
  c.llc_misses = d;
  return c;
}

class BurdenTest : public CalibrationTest {
 protected:
  BurdenModel model{cal()};
};

TEST_F(BurdenTest, ComputeBoundSectionHasUnitBurden) {
  // MPI below the 0.001 floor (assumption 5).
  const auto c = counters(1'000'000, 1'000'000, 100);
  EXPECT_DOUBLE_EQ(model.burden(c, 12), 1.0);
}

TEST_F(BurdenTest, SingleThreadIsAlwaysUnit) {
  const auto c = counters(50'000'000, 100'000'000, 312'500);
  EXPECT_DOUBLE_EQ(model.burden(c, 1), 1.0);
}

TEST_F(BurdenTest, MemoryBoundSectionPenalizedAndMonotone) {
  // Memory-bound section: T=1e8 cycles, D=312'500 misses -> stall fraction
  // 200*D/T = 0.625, solo traffic 64000*D/T = 200 MB/s. Twelve threads
  // demand 2400 MB/s of a 1200 MB/s memory system.
  const auto c = counters(50'000'000, 100'000'000, 312'500);
  const double b2 = model.burden(c, 2);
  const double b4 = model.burden(c, 4);
  const double b12 = model.burden(c, 12);
  EXPECT_GE(b2, 1.0);
  EXPECT_GE(b4, b2);
  EXPECT_GT(b12, b4);
  EXPECT_GT(b12, 1.05);  // visible penalty at 12 threads
  EXPECT_LT(b12, 20.0);  // and a sane magnitude
}

TEST_F(BurdenTest, EmptyCountersAreUnit) {
  EXPECT_DOUBLE_EQ(model.burden(tree::SectionCounters{}, 8), 1.0);
}

TEST_F(BurdenTest, AnnotateBurdensAttachesToTopLevelSections) {
  tree::TreeBuilder b;
  b.begin_sec("hot");
  b.counters(counters(50'000'000, 100'000'000, 312'500));
  b.begin_task("t").u(100).end_task();
  b.end_sec();
  b.begin_sec("cold");
  b.counters(counters(1'000'000, 1'000'000, 10));
  b.begin_task("t").u(100).end_task();
  b.end_sec();
  tree::ProgramTree t = b.finish();
  const CoreCount threads[] = {2, 12};
  annotate_burdens(t, model, threads);
  EXPECT_GT(t.root->child(0)->burden(12), 1.0);
  EXPECT_DOUBLE_EQ(t.root->child(1)->burden(12), 1.0);
  EXPECT_DOUBLE_EQ(t.root->child(0)->burden(6), 1.0);  // not requested
}

// --- Table IV classification ---

TEST(Classify, TableIvUnchangedRow) {
  EXPECT_EQ(classify(MpiTrend::Unchanged, TrafficLevel::Low),
            ExpectedSpeedup::Scalable);
  EXPECT_EQ(classify(MpiTrend::Unchanged, TrafficLevel::Moderate),
            ExpectedSpeedup::Slowdown);
  EXPECT_EQ(classify(MpiTrend::Unchanged, TrafficLevel::Heavy),
            ExpectedSpeedup::SlowdownPlusPlus);
}

TEST(Classify, TableIvHigherRow) {
  EXPECT_EQ(classify(MpiTrend::ParallelHigher, TrafficLevel::Low),
            ExpectedSpeedup::LikelyScalable);
  EXPECT_EQ(classify(MpiTrend::ParallelHigher, TrafficLevel::Moderate),
            ExpectedSpeedup::SlowdownPlus);
  EXPECT_EQ(classify(MpiTrend::ParallelHigher, TrafficLevel::Heavy),
            ExpectedSpeedup::SlowdownPlusPlus);
}

TEST(Classify, TableIvLowerRow) {
  EXPECT_EQ(classify(MpiTrend::ParallelLower, TrafficLevel::Low),
            ExpectedSpeedup::ScalableOrSuperlinear);
  EXPECT_EQ(classify(MpiTrend::ParallelLower, TrafficLevel::Moderate),
            ExpectedSpeedup::Unmodeled);
  EXPECT_EQ(classify(MpiTrend::ParallelLower, TrafficLevel::Heavy),
            ExpectedSpeedup::Unmodeled);
}

TEST(Classify, TrafficLevelThresholds) {
  ClassifyOptions opts;
  opts.saturation_mbps = 1200;
  // Low MPI forces Low regardless of traffic arithmetic.
  tree::SectionCounters low_mpi;
  low_mpi.instructions = 1'000'000;
  low_mpi.cycles = 1'000'000;
  low_mpi.llc_misses = 10;
  EXPECT_EQ(traffic_level(low_mpi, opts), TrafficLevel::Low);

  // Heavy: 64000 * D / T = 64000 * 312500 / 1e8 = 200 MB/s > 0.15*1200?
  // 200 < 720 (0.6*1200): that's Moderate. Heavy needs > 720: D = 1.2e6.
  tree::SectionCounters heavy;
  heavy.instructions = 50'000'000;
  heavy.cycles = 100'000'000;
  heavy.llc_misses = 1'200'000;  // 768 MB/s
  EXPECT_EQ(traffic_level(heavy, opts), TrafficLevel::Heavy);
  EXPECT_EQ(classify_serial(heavy, opts), ExpectedSpeedup::SlowdownPlusPlus);

  // Moderate: 200 MB/s, between 0.15 and 0.6 of saturation.
  tree::SectionCounters moderate;
  moderate.instructions = 50'000'000;
  moderate.cycles = 100'000'000;
  moderate.llc_misses = 312'500;
  EXPECT_EQ(traffic_level(moderate, opts), TrafficLevel::Moderate);
}

TEST(Classify, NamesAreHumanReadable) {
  EXPECT_STREQ(to_string(TrafficLevel::Heavy), "Heavy");
  EXPECT_STREQ(to_string(MpiTrend::Unchanged), "Par ~= Ser");
  EXPECT_STREQ(to_string(ExpectedSpeedup::SlowdownPlusPlus), "Slowdown++");
}

}  // namespace
}  // namespace pprophet::memmodel
