#include "memmodel/mpi_trend.hpp"

#include <gtest/gtest.h>

namespace pprophet::memmodel {
namespace {

// Small cache so working sets stay test-sized: 16 KB LLC, 2 KB L1, 4 KB L2.
cachesim::CacheConfig tiny_cache() {
  cachesim::CacheConfig cfg;
  cfg.l1 = {2 * 1024, 2};
  cfg.l2 = {4 * 1024, 4};
  cfg.llc = {16 * 1024, 4};
  return cfg;
}

TrendOptions tiny_options(CoreCount threads = 4, std::uint32_t sockets = 2) {
  TrendOptions o;
  o.threads = threads;
  o.sockets = sockets;
  o.cache = tiny_cache();
  return o;
}

TEST(SliceLlc, DividesAggregateCapacity) {
  const auto sliced = slice_llc(tiny_cache(), /*sockets=*/2, /*threads=*/4);
  // 16 KB × 2 sockets / 4 threads = 8 KB, set count stays a power of two.
  EXPECT_EQ(sliced.llc.size_bytes, 8u * 1024u);
  EXPECT_EQ(sliced.l1.size_bytes, tiny_cache().l1.size_bytes);  // private
}

TEST(SliceLlc, RoundsDownToPowerOfTwoSets) {
  const auto sliced = slice_llc(tiny_cache(), 2, 3);  // 32/3 KB: not pow2
  const std::uint64_t sets =
      sliced.llc.size_bytes / sliced.line_bytes / sliced.llc.associativity;
  EXPECT_EQ(sets & (sets - 1), 0u);
  EXPECT_GE(sets, 1u);
}

TEST(SliceLlc, NeverBelowOneSet) {
  const auto sliced = slice_llc(tiny_cache(), 1, 10'000);
  EXPECT_GE(sliced.llc.size_bytes,
            sliced.line_bytes * sliced.llc.associativity);
}

class MpiTrendTest : public ::testing::Test {
 protected:
  vcpu::VirtualCpu cpu{tiny_cache()};
};

TEST_F(MpiTrendTest, StreamingHugeArrayIsUnchanged) {
  // Working set >> aggregate LLC: every replay misses, serial or parallel.
  vcpu::InstrumentedArray<double> a(cpu, 64 * 1024);  // 512 KB
  MpiTrendAnalyzer tr(cpu, tiny_options());
  tr.loop_begin();
  for (std::uint64_t i = 0; i < a.size(); ++i) {
    tr.iteration(i / 512);  // 128 chunky, line-aligned iterations
    a.set(i, 1.0);
  }
  const TrendReport r = tr.loop_end();
  EXPECT_GT(r.serial_mpi, 0.05);
  EXPECT_EQ(r.trend(tiny_options()), MpiTrend::Unchanged);
}

TEST_F(MpiTrendTest, ElementCyclicPartitionIsFalseSharing) {
  // The same streaming loop split element-cyclically: every cache line is
  // touched by every thread, so the parallel replay multiplies the misses —
  // the analyzer flags the Par >> Ser row (a false-sharing-style hazard
  // that the static,1 element split would create).
  vcpu::InstrumentedArray<double> a(cpu, 16 * 1024);
  MpiTrendAnalyzer tr(cpu, tiny_options());
  tr.loop_begin();
  for (std::uint64_t i = 0; i < a.size(); ++i) {
    tr.iteration(i);  // one element per iteration -> cyclic over threads
    a.set(i, 1.0);
  }
  const TrendReport r = tr.loop_end();
  EXPECT_EQ(r.trend(tiny_options()), MpiTrend::ParallelHigher);
}

TEST_F(MpiTrendTest, AggregateCacheGrowthGivesParallelLower) {
  // Working set ~24 KB: misses the 16 KB serial LLC every pass, but fits
  // the 32 KB aggregate of two sockets when split across threads.
  vcpu::InstrumentedArray<double> a(cpu, 3 * 1024);  // 24 KB
  MpiTrendAnalyzer tr(cpu, tiny_options(/*threads=*/2));
  tr.loop_begin();
  const std::uint64_t iters = 16;
  const std::size_t per_iter = a.size() / iters;
  for (int pass = 0; pass < 6; ++pass) {
    for (std::uint64_t i = 0; i < iters; ++i) {
      tr.iteration(i);  // iteration i always touches its own block
      for (std::size_t k = 0; k < per_iter; ++k) {
        a.update(i * per_iter + k, [](double v) { return v + 1; });
      }
    }
  }
  const TrendReport r = tr.loop_end();
  EXPECT_GT(r.serial_mpi, 0.02);  // serial LLC thrashes
  EXPECT_LT(r.parallel_mpi, r.serial_mpi * 0.7);
  EXPECT_EQ(r.trend(tiny_options(2)), MpiTrend::ParallelLower);
}

TEST_F(MpiTrendTest, SharedDataThrashingGivesParallelHigher) {
  // Working set 12 KB: fits the serial 16 KB LLC, but every thread touches
  // ALL of it while owning only a 4 KB slice (2×16/8) → parallel thrash.
  vcpu::InstrumentedArray<double> table(cpu, 1536);  // 12 KB
  MpiTrendAnalyzer tr(cpu, tiny_options(/*threads=*/8));
  tr.loop_begin();
  for (int pass = 0; pass < 8; ++pass) {
    for (std::uint64_t i = 0; i < 32; ++i) {
      tr.iteration(i);
      for (std::size_t k = 0; k < table.size(); k += 8) {
        (void)table.get(k);  // whole-table scan per iteration
      }
    }
  }
  const TrendReport r = tr.loop_end();
  EXPECT_GT(r.parallel_mpi, r.serial_mpi * 1.5);
  EXPECT_EQ(r.trend(tiny_options(8)), MpiTrend::ParallelHigher);
}

TEST_F(MpiTrendTest, TrendFeedsTableIvClassification) {
  const TrendOptions opts = tiny_options();
  TrendReport lower;
  lower.serial_mpi = 0.1;
  lower.parallel_mpi = 0.01;
  EXPECT_EQ(classify(lower.trend(opts), TrafficLevel::Low),
            ExpectedSpeedup::ScalableOrSuperlinear);
  TrendReport higher;
  higher.serial_mpi = 0.01;
  higher.parallel_mpi = 0.1;
  EXPECT_EQ(classify(higher.trend(opts), TrafficLevel::Heavy),
            ExpectedSpeedup::SlowdownPlusPlus);
}

TEST_F(MpiTrendTest, TruncationIsReported) {
  TrendOptions o = tiny_options();
  o.max_accesses = 100;
  vcpu::InstrumentedArray<double> a(cpu, 1024);
  MpiTrendAnalyzer tr(cpu, o);
  tr.loop_begin();
  for (std::uint64_t i = 0; i < a.size(); ++i) {
    tr.iteration(i);
    a.set(i, 1.0);
  }
  const TrendReport r = tr.loop_end();
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.accesses, 100u);
}

TEST_F(MpiTrendTest, EmptyLoopIsHarmless) {
  MpiTrendAnalyzer tr(cpu, tiny_options());
  tr.loop_begin();
  const TrendReport r = tr.loop_end();
  EXPECT_EQ(r.accesses, 0u);
  EXPECT_EQ(r.trend(tiny_options()), MpiTrend::Unchanged);
}

TEST_F(MpiTrendTest, MisuseThrows) {
  MpiTrendAnalyzer tr(cpu, tiny_options());
  EXPECT_THROW(tr.iteration(0), std::logic_error);
  EXPECT_THROW(tr.loop_end(), std::logic_error);
  tr.loop_begin();
  EXPECT_THROW(tr.loop_begin(), std::logic_error);
}

}  // namespace
}  // namespace pprophet::memmodel
