// Tests of the survey-addition kernels (Jacobi, Mandelbrot) and their
// interaction with the prediction stack.
#include <gtest/gtest.h>

#include <cmath>

#include "core/prophet.hpp"
#include "report/experiment.hpp"
#include "tree/validate.hpp"
#include "workloads/ompscr.hpp"

namespace pprophet::workloads {
namespace {

TEST(JacobiKernel, SweepsProduceValidTree) {
  JacobiParams p;
  p.n = 32;
  p.sweeps = 3;
  const KernelRun run = run_jacobi(p);
  EXPECT_TRUE(tree::is_valid(run.tree));
  std::size_t sections = 0;
  for (const auto& c : run.tree.root->children()) {
    if (c->kind() == tree::NodeKind::Sec) ++sections;
  }
  EXPECT_EQ(sections, 3u);
  EXPECT_TRUE(std::isfinite(run.checksum));
  EXPECT_GT(run.checksum, 0.0);
}

TEST(JacobiKernel, Deterministic) {
  JacobiParams p;
  p.n = 24;
  EXPECT_DOUBLE_EQ(run_jacobi(p).checksum, run_jacobi(p).checksum);
}

TEST(JacobiKernel, MemoryBoundOnScaledCache) {
  JacobiParams p;
  p.n = 192;  // 3 × 288 KB grids vs the 128 KB scaled LLC
  p.sweeps = 2;
  const KernelRun run =
      run_jacobi(p, KernelConfig{.cache = scaled_cache()});
  const double mpi = static_cast<double>(run.llc_misses) /
                     static_cast<double>(run.instructions);
  EXPECT_GT(mpi, 0.001);
}

TEST(JacobiKernel, BalancedSweepsScaleWell) {
  JacobiParams p;
  p.n = 96;
  p.sweeps = 2;
  const KernelRun run = run_jacobi(p);
  core::PredictOptions o = report::paper_options(core::Method::Synthesizer);
  const double s8 = core::predict(run.tree, 8, o).speedup;
  EXPECT_GT(s8, 5.0);  // near-balanced strips
}

TEST(MandelbrotKernel, CountsAreStable) {
  MandelbrotParams p;
  p.width = 64;
  p.height = 48;
  p.max_iter = 128;
  const KernelRun a = run_mandelbrot(p);
  const KernelRun b = run_mandelbrot(p);
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
  EXPECT_TRUE(tree::is_valid(a.tree));
  EXPECT_GT(a.checksum, 0.0);
}

TEST(MandelbrotKernel, RowsAreWildlyImbalanced) {
  MandelbrotParams p;
  p.width = 96;
  p.height = 64;
  const KernelRun run = run_mandelbrot(p);
  const tree::Node* sec = run.tree.root->child(0);
  Cycles min_len = ~Cycles{0}, max_len = 0;
  for (const auto& task : sec->children()) {
    min_len = std::min(min_len, task->length());
    max_len = std::max(max_len, task->length());
  }
  EXPECT_GT(max_len, 3 * min_len);  // interior rows cost far more
}

TEST(MandelbrotKernel, ScheduleChoiceMattersALot) {
  MandelbrotParams p;
  p.width = 96;
  p.height = 64;
  const KernelRun run = run_mandelbrot(p);
  core::PredictOptions o = report::paper_options(core::Method::Synthesizer);
  o.schedule = runtime::OmpSchedule::StaticBlock;
  const double block = core::predict(run.tree, 8, o).speedup;
  o.schedule = runtime::OmpSchedule::Dynamic;
  const double dynamic = core::predict(run.tree, 8, o).speedup;
  // Contiguous row blocks concentrate the in-set band on few threads.
  EXPECT_GT(dynamic, 1.15 * block);
}

TEST(MandelbrotKernel, ComputeBound) {
  MandelbrotParams p;
  p.width = 64;
  p.height = 64;
  const KernelRun run = run_mandelbrot(p);
  const double mpi = static_cast<double>(run.llc_misses) /
                     static_cast<double>(run.instructions);
  EXPECT_LT(mpi, 0.001);
}

}  // namespace
}  // namespace pprophet::workloads
