#include <gtest/gtest.h>

#include <cmath>

#include "tree/tree_stats.hpp"
#include "tree/validate.hpp"
#include "workloads/npb.hpp"
#include "workloads/ompscr.hpp"

namespace pprophet::workloads {
namespace {

// Small problem sizes keep each kernel run in the tens of milliseconds.

TEST(MdKernel, RunsAndProducesValidTree) {
  MdParams p;
  p.particles = 48;
  p.steps = 2;
  const KernelRun run = run_md(p);
  EXPECT_TRUE(tree::is_valid(run.tree));
  EXPECT_GT(run.cycles, 0u);
  EXPECT_GT(run.instructions, 0u);
  // One parallel section per step.
  std::size_t sections = 0;
  for (const auto& c : run.tree.root->children()) {
    if (c->kind() == tree::NodeKind::Sec) ++sections;
  }
  EXPECT_EQ(sections, 2u);
}

TEST(MdKernel, IsComputeBound) {
  // Enough steps that the cold-start misses amortize away.
  MdParams p;
  p.particles = 96;
  p.steps = 3;
  const KernelRun run = run_md(p);
  const double mpi = static_cast<double>(run.llc_misses) /
                     static_cast<double>(run.instructions);
  EXPECT_LT(mpi, 0.001);  // assumption-5 threshold: no burden expected
}

TEST(MdKernel, DeterministicChecksum) {
  MdParams p;
  p.particles = 32;
  EXPECT_DOUBLE_EQ(run_md(p).checksum, run_md(p).checksum);
}

TEST(LuKernel, TriangularImbalanceInTree) {
  LuParams p;
  p.n = 24;
  const KernelRun run = run_lu(p);
  EXPECT_TRUE(tree::is_valid(run.tree));
  // n-1 inner parallel sections, shrinking trip counts: k-th has n-1-k.
  std::vector<const tree::Node*> secs;
  for (const auto& c : run.tree.root->children()) {
    if (c->kind() == tree::NodeKind::Sec) secs.push_back(c.get());
  }
  ASSERT_EQ(secs.size(), p.n - 1);
  EXPECT_EQ(secs[0]->logical_child_count(), p.n - 1);
  EXPECT_EQ(secs[10]->logical_child_count(), p.n - 11);
  EXPECT_EQ(secs.back()->logical_child_count(), 1u);
}

TEST(LuKernel, ReductionIsNumericallySane) {
  LuParams p;
  p.n = 16;
  const KernelRun run = run_lu(p);
  EXPECT_TRUE(std::isfinite(run.checksum));
  EXPECT_NE(run.checksum, 0.0);
  EXPECT_DOUBLE_EQ(run.checksum, run_lu(p).checksum);
}

TEST(FftKernel, RoundTripIsExact) {
  FftParams p;
  p.n = 256;
  p.parallel_cutoff = 32;
  const KernelRun run = run_fft(p);
  // checksum = max round-trip error × 1e6; must be tiny.
  EXPECT_LT(run.checksum, 1e-3);
  EXPECT_TRUE(tree::is_valid(run.tree));
}

TEST(FftKernel, RecursiveSectionsNestToCutoff) {
  FftParams p;
  p.n = 256;
  p.parallel_cutoff = 32;
  const KernelRun run = run_fft(p);
  const tree::TreeStats stats = tree::compute_stats(run.tree);
  // 256 → 128 → 64 (>32): three annotated levels of recursion. Depth in
  // the tree: each level adds Sec+Task layers.
  EXPECT_GE(stats.max_depth, 6u);
  EXPECT_GT(stats.count_by_kind[static_cast<int>(tree::NodeKind::Sec)], 4u);
}

TEST(QsortKernel, SortsCorrectly) {
  QsortParams p;
  p.n = 2048;
  p.parallel_cutoff = 128;
  const KernelRun run = run_qsort(p);
  EXPECT_DOUBLE_EQ(run.checksum, 1.0);  // sorted and sum-preserving
  EXPECT_TRUE(tree::is_valid(run.tree));
}

TEST(QsortKernel, RecursionDepthBoundedByCutoff) {
  QsortParams small;
  small.n = 512;
  small.parallel_cutoff = 512;  // never parallel below the top
  const KernelRun run = run_qsort(small);
  const tree::TreeStats stats = tree::compute_stats(run.tree);
  EXPECT_EQ(stats.count_by_kind[static_cast<int>(tree::NodeKind::Sec)], 1u);
}

TEST(EpKernel, CountsAreStableAndTreeFlat) {
  EpParams p;
  p.log2_pairs = 10;
  p.blocks = 16;
  const KernelRun run = run_ep(p);
  EXPECT_TRUE(tree::is_valid(run.tree));
  EXPECT_DOUBLE_EQ(run.checksum, run_ep(p).checksum);
  const tree::Node* sec = run.tree.root->child(0)->kind() == tree::NodeKind::Sec
                              ? run.tree.root->child(0)
                              : run.tree.root->child(1);
  EXPECT_EQ(sec->logical_child_count(), 16u);
  // Embarrassingly parallel and compute-bound.
  const double mpi = static_cast<double>(run.llc_misses) /
                     static_cast<double>(run.instructions);
  EXPECT_LT(mpi, 0.001);
}

TEST(EpKernel, BlockDecompositionDoesNotChangeResult) {
  EpParams a;
  a.log2_pairs = 10;
  a.blocks = 4;
  EpParams b = a;
  b.blocks = 16;
  // The skip-ahead LCG makes the tally independent of the block split.
  EXPECT_DOUBLE_EQ(run_ep(a).checksum, run_ep(b).checksum);
}

TEST(FtKernel, SectionsPerIterationAndCounters) {
  FtParams p;
  p.nx = 16;
  p.ny = 8;
  p.nz = 8;
  p.iterations = 1;
  const KernelRun run = run_ft(p, KernelConfig{.cache = scaled_cache()});
  EXPECT_TRUE(tree::is_valid(run.tree));
  // evolve + 3 transform dims = 4 sections per iteration.
  std::size_t sections = 0;
  for (const auto& c : run.tree.root->children()) {
    if (c->kind() == tree::NodeKind::Sec) {
      ++sections;
      ASSERT_NE(c->counters(), nullptr);
      EXPECT_GT(c->counters()->instructions, 0u);
    }
  }
  EXPECT_EQ(sections, 4u);
  EXPECT_TRUE(std::isfinite(run.checksum));
}

TEST(FtKernel, MemoryBoundOnScaledCache) {
  FtParams p;
  p.nx = 64;
  p.ny = 32;
  p.nz = 16;  // 512 KB grid vs 128 KB scaled LLC: streams every pass
  p.iterations = 1;
  const KernelRun run = run_ft(p, KernelConfig{.cache = scaled_cache()});
  const double mpi = static_cast<double>(run.llc_misses) /
                     static_cast<double>(run.instructions);
  EXPECT_GT(mpi, 0.001);  // above the burden-model floor
}

TEST(MgKernel, ResidualDropsAcrossVCycles) {
  MgParams one;
  one.n = 16;
  one.vcycles = 1;
  MgParams four = one;
  four.vcycles = 4;
  const double r1 = run_mg(one).checksum;
  const double r4 = run_mg(four).checksum;
  EXPECT_LT(r4, r1);  // multigrid converges
  EXPECT_GT(r1, 0.0);
}

TEST(MgKernel, HasAllPhaseSections) {
  MgParams p;
  p.n = 16;
  p.vcycles = 1;
  const KernelRun run = run_mg(p);
  EXPECT_TRUE(tree::is_valid(run.tree));
  bool smooth = false, residual = false, restricted = false, prolong = false;
  for (const auto& c : run.tree.root->children()) {
    if (c->kind() != tree::NodeKind::Sec) continue;
    if (c->name() == "mg-smooth") smooth = true;
    if (c->name() == "mg-residual") residual = true;
    if (c->name() == "mg-restrict") restricted = true;
    if (c->name() == "mg-prolongate") prolong = true;
  }
  EXPECT_TRUE(smooth && residual && restricted && prolong);
}

TEST(CgKernel, ResidualDecreases) {
  CgParams p;
  p.n = 400;
  p.iterations = 6;
  const KernelRun run = run_cg(p);
  EXPECT_TRUE(tree::is_valid(run.tree));
  EXPECT_TRUE(std::isfinite(run.checksum));
  // Deterministic digest.
  EXPECT_DOUBLE_EQ(run.checksum, run_cg(p).checksum);
}

TEST(CgKernel, OnlineCompressionKeepsTreeSmall) {
  CgParams p;
  p.n = 960;
  p.iterations = 4;
  const KernelRun run = run_cg(p);
  const tree::TreeStats stats = tree::compute_stats(run.tree);
  // 3 sections × 4 iterations with ~48-64 strips each: without compression
  // that is hundreds of physical tasks; RLE should merge most row strips.
  EXPECT_LT(stats.physical_nodes, 1200u);
  EXPECT_GT(stats.logical_nodes, stats.physical_nodes);
}

TEST(Kernels, ScaledCachePreservesHierarchyShape) {
  const cachesim::CacheConfig c = scaled_cache();
  EXPECT_LT(c.l1.size_bytes, c.l2.size_bytes);
  EXPECT_LT(c.l2.size_bytes, c.llc.size_bytes);
  EXPECT_EQ(c.llc.size_bytes, 128u * 1024u);
}

TEST(IsKernel, RankingIsValidPermutation) {
  IsParams p;
  p.keys = 4096;
  p.iterations = 1;
  const KernelRun run = run_is(p);
  EXPECT_DOUBLE_EQ(run.checksum, 1.0);
  EXPECT_TRUE(tree::is_valid(run.tree));
}

TEST(IsKernel, FineGrainedTasksStressTheTree) {
  // Without online compression the raw tree has one node per key block --
  // the paper's 10 GB IS case in miniature.
  IsParams p;
  p.keys = 1 << 14;
  p.iterations = 2;
  KernelConfig raw;
  raw.profiler.online_compression = false;
  const KernelRun uncompressed = run_is(p, raw);
  const KernelRun compressed = run_is(p);  // defaults compress online
  const auto raw_stats = tree::compute_stats(uncompressed.tree);
  const auto cmp_stats = tree::compute_stats(compressed.tree);
  EXPECT_GT(raw_stats.physical_nodes, 4u * cmp_stats.physical_nodes);
  EXPECT_EQ(raw_stats.logical_nodes, cmp_stats.logical_nodes);
}

TEST(IsKernel, TwoSectionsPerIteration) {
  IsParams p;
  p.keys = 2048;
  p.iterations = 3;
  const KernelRun run = run_is(p);
  std::size_t sections = 0;
  for (const auto& c : run.tree.root->children()) {
    if (c->kind() == tree::NodeKind::Sec) ++sections;
  }
  EXPECT_EQ(sections, 6u);  // histogram + rank, three iterations
}

}  // namespace
}  // namespace pprophet::workloads
