#include "workloads/test_patterns.hpp"

#include <gtest/gtest.h>

#include "core/prophet.hpp"
#include "tree/compress.hpp"
#include "tree/validate.hpp"

namespace pprophet::workloads {
namespace {

TEST(ComputeOverhead, UniformIsExactlyBase) {
  util::Xoshiro256 rng(1);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(compute_overhead(i, 10, 500, WorkShape::Uniform, 0.5, rng),
              500u);
  }
}

TEST(ComputeOverhead, RandomStaysWithinSpread) {
  util::Xoshiro256 rng(2);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const Cycles v =
        compute_overhead(i, 1000, 1000, WorkShape::Random, 0.3, rng);
    EXPECT_GE(v, 700u);
    EXPECT_LE(v, 1300u);
  }
}

TEST(ComputeOverhead, TriangularGrowsMonotonically) {
  util::Xoshiro256 rng(3);
  Cycles prev = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const Cycles v =
        compute_overhead(i, 64, 1000, WorkShape::Triangular, 0.8, rng);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(ComputeOverhead, BimodalAlternates) {
  util::Xoshiro256 rng(4);
  const Cycles even =
      compute_overhead(0, 8, 1000, WorkShape::Bimodal, 0.5, rng);
  const Cycles odd =
      compute_overhead(1, 8, 1000, WorkShape::Bimodal, 0.5, rng);
  EXPECT_EQ(even, 1500u);
  EXPECT_EQ(odd, 500u);
}

TEST(Test1, ProducesValidTreeWithExpectedShape) {
  Test1Params p;
  p.i_max = 16;
  p.lock1_prob = 1.0;
  p.ratio_lock_1 = 0.2;
  const tree::ProgramTree t = run_test1(p);
  EXPECT_TRUE(tree::is_valid(t));
  ASSERT_EQ(t.top_level().size(), 1u);
  const tree::Node* sec = t.root->child(0);
  EXPECT_EQ(sec->kind(), tree::NodeKind::Sec);
  EXPECT_EQ(sec->logical_child_count(), 16u);
  // Every iteration took lock 1: each task has an L child with lock id 1.
  for (const auto& task : sec->children()) {
    bool has_lock = false;
    for (const auto& seg : task->children()) {
      if (seg->kind() == tree::NodeKind::L) {
        EXPECT_EQ(seg->lock_id(), 1u);
        has_lock = true;
      }
    }
    EXPECT_TRUE(has_lock);
  }
}

TEST(Test1, DeterministicForSameSeed) {
  Test1Params p;
  p.seed = 99;
  const tree::ProgramTree a = run_test1(p);
  const tree::ProgramTree b = run_test1(p);
  EXPECT_TRUE(tree::structurally_equal(*a.root, *b.root, 0.0));
}

TEST(Test1, NoLocksWhenProbabilityZero) {
  Test1Params p;
  p.lock1_prob = 0.0;
  p.lock2_prob = 0.0;
  const tree::ProgramTree t = run_test1(p);
  for (const auto& task : t.root->child(0)->children()) {
    for (const auto& seg : task->children()) {
      EXPECT_NE(seg->kind(), tree::NodeKind::L);
    }
  }
}

TEST(Test2, NestedSectionsPresent) {
  Test2Params p;
  p.nested_prob = 1.0;
  p.k_max = 6;
  p.inner.i_max = 4;
  const tree::ProgramTree t = run_test2(p);
  EXPECT_TRUE(tree::is_valid(t));
  const tree::Node* outer = t.root->child(0);
  EXPECT_EQ(outer->logical_child_count(), 6u);
  for (const auto& task : outer->children()) {
    bool has_nested = false;
    for (const auto& seg : task->children()) {
      if (seg->kind() == tree::NodeKind::Sec) {
        has_nested = true;
        EXPECT_EQ(seg->logical_child_count(), 4u);
      }
    }
    EXPECT_TRUE(has_nested);
  }
}

TEST(Test2, NestedProbabilityZeroGivesFlatLoop) {
  Test2Params p;
  p.nested_prob = 0.0;
  const tree::ProgramTree t = run_test2(p);
  for (const auto& task : t.root->child(0)->children()) {
    for (const auto& seg : task->children()) {
      EXPECT_NE(seg->kind(), tree::NodeKind::Sec);
    }
  }
}

TEST(RandomParams, SamplesAreDiverseButValid) {
  util::Xoshiro256 rng(2026);
  int shapes_seen = 0;
  bool saw_lock2 = false;
  std::uint64_t prev_imax = 0;
  bool varied = false;
  for (int s = 0; s < 40; ++s) {
    const Test1Params p = random_test1(rng);
    EXPECT_GE(p.i_max, 8u);
    EXPECT_LE(p.i_max, 96u);
    const double total = p.ratio_delay_1 + p.ratio_lock_1 + p.ratio_delay_2 +
                         p.ratio_lock_2 + p.ratio_delay_3;
    EXPECT_NEAR(total, 1.0, 1e-9);
    if (p.ratio_lock_2 > 0.0) saw_lock2 = true;
    shapes_seen |= 1 << static_cast<int>(p.shape);
    if (prev_imax != 0 && prev_imax != p.i_max) varied = true;
    prev_imax = p.i_max;
    const tree::ProgramTree t = run_test1(p);
    EXPECT_TRUE(tree::is_valid(t));
  }
  EXPECT_TRUE(saw_lock2);
  EXPECT_TRUE(varied);
  EXPECT_GT(__builtin_popcount(shapes_seen), 2);
}

// A smoke validation in the spirit of Figure 11: the FF prediction of a
// random Test1 sample must track the ground-truth machine closely.
TEST(ValidationSmoke, FfTracksGroundTruthOnTest1) {
  util::Xoshiro256 rng(7);
  core::PredictOptions real;
  real.method = core::Method::GroundTruth;
  real.machine.cores = 8;
  real.machine.context_switch = 0;
  real.omp_overheads = runtime::OmpOverheads{0, 0, 0, 0, 0, 0, 0};
  core::PredictOptions ff = real;
  ff.method = core::Method::FastForward;
  for (int s = 0; s < 10; ++s) {
    const Test1Params p = random_test1(rng);
    const tree::ProgramTree t = run_test1(p);
    const double sp_real = core::predict(t, 8, real).speedup;
    const double sp_ff = core::predict(t, 8, ff).speedup;
    EXPECT_NEAR(sp_ff, sp_real, 0.25 * sp_real) << "sample " << s;
  }
}

}  // namespace
}  // namespace pprophet::workloads
