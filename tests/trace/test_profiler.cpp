#include "trace/profiler.hpp"

#include <gtest/gtest.h>

#include "tree/validate.hpp"

namespace pprophet::trace {
namespace {

using tree::NodeKind;

// Drives the profiler with a manual clock: each helper advances virtual
// time, so node lengths are exact.
class ProfilerTest : public ::testing::Test {
 protected:
  ManualClock clock;
};

TEST_F(ProfilerTest, EmptyProgramYieldsRootOnly) {
  IntervalProfiler p(clock);
  clock.advance(100);
  const tree::ProgramTree t = p.finish();
  ASSERT_TRUE(t.root != nullptr);
  ASSERT_EQ(t.root->children().size(), 1u);  // one top-level U
  EXPECT_EQ(t.root->child(0)->kind(), NodeKind::U);
  EXPECT_EQ(t.root->child(0)->length(), 100u);
  EXPECT_EQ(t.root->length(), 100u);
}

TEST_F(ProfilerTest, SimpleLoopBuildsFigure4StyleTree) {
  IntervalProfiler p(clock);
  clock.advance(10);  // serial prologue
  p.sec_begin("loop");
  for (int i = 0; i < 3; ++i) {
    p.task_begin("t");
    clock.advance(50);
    p.lock_begin(1);
    clock.advance(20);
    p.lock_end(1);
    clock.advance(30);
    p.task_end();
  }
  p.sec_end(true);
  clock.advance(5);  // serial epilogue
  const tree::ProgramTree t = p.finish();

  EXPECT_TRUE(tree::is_valid(t));
  ASSERT_EQ(t.root->children().size(), 3u);  // U, Sec, U
  EXPECT_EQ(t.root->child(0)->length(), 10u);
  const tree::Node* sec = t.root->child(1);
  EXPECT_EQ(sec->kind(), NodeKind::Sec);
  EXPECT_EQ(sec->length(), 300u);
  ASSERT_EQ(sec->children().size(), 3u);
  const tree::Node* task = sec->child(0);
  EXPECT_EQ(task->length(), 100u);
  ASSERT_EQ(task->children().size(), 3u);
  EXPECT_EQ(task->child(0)->kind(), NodeKind::U);
  EXPECT_EQ(task->child(0)->length(), 50u);
  EXPECT_EQ(task->child(1)->kind(), NodeKind::L);
  EXPECT_EQ(task->child(1)->length(), 20u);
  EXPECT_EQ(task->child(1)->lock_id(), 1u);
  EXPECT_EQ(task->child(2)->length(), 30u);
  EXPECT_EQ(t.root->child(2)->length(), 5u);
}

TEST_F(ProfilerTest, NestedSectionInsideTask) {
  IntervalProfiler p(clock);
  p.sec_begin("outer");
  p.task_begin("i");
  clock.advance(10);
  p.sec_begin("inner");
  p.task_begin("j");
  clock.advance(40);
  p.task_end();
  p.sec_end(false);  // nowait
  clock.advance(10);
  p.task_end();
  p.sec_end(true);
  const tree::ProgramTree t = p.finish();

  EXPECT_TRUE(tree::is_valid(t));
  const tree::Node* outer = t.root->child(0);
  const tree::Node* task = outer->child(0);
  ASSERT_EQ(task->children().size(), 3u);  // U, Sec, U
  EXPECT_EQ(task->child(1)->kind(), NodeKind::Sec);
  EXPECT_FALSE(task->child(1)->barrier_at_end());
  EXPECT_EQ(task->child(1)->length(), 40u);
  EXPECT_TRUE(outer->barrier_at_end());
}

TEST_F(ProfilerTest, GlueBetweenTasksIsUnattributed) {
  IntervalProfiler p(clock);
  p.sec_begin("s");
  clock.advance(7);  // glue before first task
  p.task_begin("t");
  clock.advance(10);
  p.task_end();
  clock.advance(3);  // glue between/after tasks
  p.sec_end(true);
  const tree::ProgramTree t = p.finish();
  EXPECT_EQ(p.unattributed_cycles(), 10u);
  // The Sec node's measured length still covers the glue.
  EXPECT_EQ(t.root->child(0)->length(), 20u);
  EXPECT_EQ(t.root->child(0)->serial_work(), 10u);
}

TEST_F(ProfilerTest, ZeroLengthUNodesAreNotEmitted) {
  IntervalProfiler p(clock);
  p.sec_begin("s");
  p.task_begin("t");
  p.lock_begin(1);
  clock.advance(5);
  p.lock_end(1);
  p.task_end();
  p.sec_end(true);
  const tree::ProgramTree t = p.finish();
  const tree::Node* task = t.root->child(0)->child(0);
  ASSERT_EQ(task->children().size(), 1u);  // only the L node
  EXPECT_EQ(task->child(0)->kind(), NodeKind::L);
}

TEST_F(ProfilerTest, CountersAttachedToTopLevelSectionsOnly) {
  AnalyticCounterSource counters(clock, /*ipc=*/2.0, /*mpi=*/0.01);
  IntervalProfiler p(clock, &counters);
  p.sec_begin("outer");
  p.task_begin("t");
  p.sec_begin("inner");
  p.task_begin("u");
  clock.advance(1000);
  p.task_end();
  p.sec_end(true);
  p.task_end();
  p.sec_end(true);
  const tree::ProgramTree t = p.finish();
  const tree::Node* outer = t.root->child(0);
  ASSERT_NE(outer->counters(), nullptr);
  EXPECT_EQ(outer->counters()->cycles, 1000u);
  EXPECT_EQ(outer->counters()->instructions, 2000u);
  EXPECT_EQ(outer->counters()->llc_misses, 20u);
  const tree::Node* inner = outer->child(0)->child(0);
  EXPECT_EQ(inner->counters(), nullptr);
}

TEST_F(ProfilerTest, MismatchedSecEndThrows) {
  IntervalProfiler p(clock);
  p.sec_begin("s");
  p.task_begin("t");
  EXPECT_THROW(p.sec_end(true), AnnotationError);
}

TEST_F(ProfilerTest, MismatchedTaskEndThrows) {
  IntervalProfiler p(clock);
  p.sec_begin("s");
  EXPECT_THROW(p.task_end(), AnnotationError);
}

TEST_F(ProfilerTest, TaskOutsideSectionThrows) {
  IntervalProfiler p(clock);
  EXPECT_THROW(p.task_begin("t"), AnnotationError);
}

TEST_F(ProfilerTest, LockOutsideTaskThrows) {
  IntervalProfiler p(clock);
  EXPECT_THROW(p.lock_begin(1), AnnotationError);
}

TEST_F(ProfilerTest, NestedLocksThrow) {
  IntervalProfiler p(clock);
  p.sec_begin("s");
  p.task_begin("t");
  p.lock_begin(1);
  EXPECT_THROW(p.lock_begin(2), AnnotationError);
}

TEST_F(ProfilerTest, WrongLockIdOnEndThrows) {
  IntervalProfiler p(clock);
  p.sec_begin("s");
  p.task_begin("t");
  p.lock_begin(1);
  EXPECT_THROW(p.lock_end(2), AnnotationError);
}

TEST_F(ProfilerTest, LockEndWithoutBeginThrows) {
  IntervalProfiler p(clock);
  p.sec_begin("s");
  p.task_begin("t");
  EXPECT_THROW(p.lock_end(1), AnnotationError);
}

TEST_F(ProfilerTest, TaskEndWithOpenLockThrows) {
  IntervalProfiler p(clock);
  p.sec_begin("s");
  p.task_begin("t");
  p.lock_begin(1);
  EXPECT_THROW(p.task_end(), AnnotationError);
}

TEST_F(ProfilerTest, LockIdZeroIsReserved) {
  IntervalProfiler p(clock);
  p.sec_begin("s");
  p.task_begin("t");
  EXPECT_THROW(p.lock_begin(0), AnnotationError);
}

TEST_F(ProfilerTest, FinishWithOpenAnnotationsThrows) {
  IntervalProfiler p(clock);
  p.sec_begin("s");
  EXPECT_THROW(p.finish(), AnnotationError);
}

TEST_F(ProfilerTest, OnlineCompressionMergesIdenticalTasks) {
  ProfilerOptions opts;
  opts.online_compression = true;
  IntervalProfiler p(clock, nullptr, opts);
  p.sec_begin("s");
  for (int i = 0; i < 500; ++i) {
    p.task_begin("t");
    clock.advance(100);
    p.task_end();
  }
  p.sec_end(true);
  const tree::ProgramTree t = p.finish();
  const tree::Node* sec = t.root->child(0);
  ASSERT_EQ(sec->children().size(), 1u);
  EXPECT_EQ(sec->child(0)->repeat(), 500u);
  EXPECT_EQ(sec->serial_work(), 500u * 100u);
}

TEST_F(ProfilerTest, OnlineCompressionKeepsDistinctTasks) {
  ProfilerOptions opts;
  opts.online_compression = true;
  opts.online_tolerance = 0.05;
  IntervalProfiler p(clock, nullptr, opts);
  p.sec_begin("s");
  for (int i = 0; i < 4; ++i) {
    p.task_begin("t");
    clock.advance(100 + 100 * static_cast<Cycles>(i));  // growing lengths
    p.task_end();
  }
  p.sec_end(true);
  const tree::ProgramTree t = p.finish();
  EXPECT_EQ(t.root->child(0)->children().size(), 4u);
}

// Annotation errors name the enclosing BEGIN frames, so a mismatched END
// deep inside a workload points at the actual open nesting.
TEST_F(ProfilerTest, AnnotationErrorReportsOpenFrames) {
  IntervalProfiler p(clock);
  p.sec_begin("loop");
  p.task_begin("body");
  p.lock_begin(3);
  try {
    p.sec_begin("nested");  // illegal inside an open lock
    FAIL() << "expected AnnotationError";
  } catch (const AnnotationError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("open frames:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("Sec('loop')"), std::string::npos) << msg;
    EXPECT_NE(msg.find("Task('body')"), std::string::npos) << msg;
    EXPECT_NE(msg.find("[lock 3]"), std::string::npos) << msg;
  }
}

TEST_F(ProfilerTest, AnnotationErrorAtTopLevelSaysNone) {
  IntervalProfiler p(clock);
  try {
    p.task_begin("t");  // task outside any section
    FAIL() << "expected AnnotationError";
  } catch (const AnnotationError& e) {
    EXPECT_NE(std::string(e.what()).find("open frames: Root"),
              std::string::npos)
        << e.what();
  }
}

// With a real clock, the profiler's own callback cost must be subtracted:
// profiling a loop of N cheap annotated tasks should not inflate the tree's
// serial work by the annotation cost.
TEST(ProfilerOverhead, SelfExclusionKeepsLengthsStable) {
  SteadyClock clock;
  IntervalProfiler with(clock, nullptr, {.subtract_overhead = true});
  with.sec_begin("s");
  for (int i = 0; i < 20000; ++i) {
    with.task_begin("t");
    with.task_end();
  }
  with.sec_end(true);
  const tree::ProgramTree t = with.finish();
  EXPECT_GT(with.excluded_overhead(), 0u);
  // Empty tasks should carry (near-)zero attributed work; allow scheduler
  // noise of a few microseconds total.
  EXPECT_LT(t.root->child(0)->serial_work(), 4'000'000u);  // < 4 ms in ns
}

}  // namespace
}  // namespace pprophet::trace
