#include "annotate/annotations.hpp"

#include <gtest/gtest.h>

#include "tree/validate.hpp"

namespace pprophet::annotate {
namespace {

// An "annotated serial program" in the paper's style: the macros are inert
// until a profiler is installed.
void annotated_program(trace::ManualClock& clock) {
  clock.advance(10);
  PAR_SEC_BEGIN("loop1");
  for (int i = 0; i < 4; ++i) {
    PAR_TASK_BEGIN("t1");
    clock.advance(50);
    LOCK_BEGIN(1);
    clock.advance(20);
    LOCK_END(1);
    PAR_TASK_END();
  }
  PAR_SEC_END(true);
}

TEST(Annotations, MacrosAreInertWithoutTarget) {
  trace::ManualClock clock;
  ASSERT_EQ(target(), nullptr);
  annotated_program(clock);  // must not crash or throw
  EXPECT_EQ(target(), nullptr);
}

TEST(Annotations, MacrosDriveInstalledProfiler) {
  trace::ManualClock clock;
  trace::IntervalProfiler profiler(clock);
  {
    ScopedAnnotationTarget scope(profiler);
    annotated_program(clock);
  }
  const tree::ProgramTree t = profiler.finish();
  EXPECT_TRUE(tree::is_valid(t));
  ASSERT_EQ(t.root->children().size(), 2u);  // U + Sec
  const tree::Node* sec = t.root->child(1);
  EXPECT_EQ(sec->name(), "loop1");
  EXPECT_EQ(sec->children().size(), 4u);
  EXPECT_EQ(sec->serial_work(), 4u * 70u);
}

TEST(Annotations, ScopedTargetRestoresPrevious) {
  trace::ManualClock clock;
  trace::IntervalProfiler outer(clock);
  trace::IntervalProfiler inner(clock);
  ScopedAnnotationTarget a(outer);
  EXPECT_EQ(target(), &outer);
  {
    ScopedAnnotationTarget b(inner);
    EXPECT_EQ(target(), &inner);
  }
  EXPECT_EQ(target(), &outer);
  set_target(nullptr);
}

TEST(Annotations, SetTargetReturnsPrevious) {
  trace::ManualClock clock;
  trace::IntervalProfiler p(clock);
  EXPECT_EQ(set_target(&p), nullptr);
  EXPECT_EQ(set_target(nullptr), &p);
}

}  // namespace
}  // namespace pprophet::annotate
