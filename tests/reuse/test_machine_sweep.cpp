#include "core/machine_sweep.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "machine/presets.hpp"
#include "memmodel/burden.hpp"
#include "memmodel/calibration.hpp"
#include "reuse/histogram.hpp"
#include "tree/builder.hpp"

namespace pprophet::core {
namespace {

/// One imbalanced parallel section with measured counters and a reuse
/// histogram whose tail straddles the presets' LLC capacities, so
/// projection actually changes D between machines.
tree::ProgramTree sample_tree() {
  tree::TreeBuilder b;
  b.u(1000);
  b.begin_sec("loop");
  b.begin_task("t").u(900).l(1, 100).end_task().repeat_last(64);
  tree::SectionCounters c;
  c.instructions = 400'000;
  c.cycles = 64'000;
  // Memory-bound on the profiled machine: MPI 0.01, comfortably above the
  // burden model's insensitivity floor (assumption 5), so the memory model
  // actually differentiates machines in the sweep tests below.
  c.llc_misses = 4'000;
  c.llc_writebacks = 1'000;
  b.counters(c).end_sec();
  b.u(200);
  tree::ProgramTree t = b.finish();

  reuse::ReuseHistogram h;
  h.config = reuse::ProfiledConfig{};  // profiled on the westmere preset
  h.cold = 40;
  // Reuses at distances between the scaled LLC capacities of the presets:
  // hits on big-LLC machines, misses on small ones.
  for (int i = 0; i < 500; ++i) {
    h.record(100);       // hits everything beyond L1
    h.record(250'000);   // ~15 MB of 64 B lines: westmere misses, epyc hits
  }
  t.root->child(1)->set_reuse_profile(h);
  return t;
}

TEST(MachineSweep, OneEntryPerPresetFullGridEach) {
  const tree::ProgramTree t = sample_tree();
  const std::vector<machine::MachinePreset> presets = {
      *machine::find_machine_preset("westmere"),
      *machine::find_machine_preset("epyc"),
  };
  SweepGrid grid;
  grid.thread_counts = {2, 4, 24};

  const MachineSweepResult res = sweep_machines(t, presets, grid);
  ASSERT_EQ(res.machines.size(), 2u);
  EXPECT_EQ(res.machines[0].machine, "westmere");
  EXPECT_EQ(res.machines[1].machine, "epyc");
  for (const MachineSweepEntry& e : res.machines) {
    EXPECT_EQ(e.projected_sections, 1u);
    ASSERT_EQ(e.result.cells.size(), grid.size());
    for (const SweepCell& cell : e.result.cells) {
      EXPECT_GT(cell.estimate.speedup, 0.0);
    }
  }
}

TEST(MachineSweep, ProfiledMachineMatchesPlainSweep) {
  // Pricing the tree on the machine it was profiled on must be a no-op:
  // identical cells to a plain sweep with that preset's machine config.
  const tree::ProgramTree t = sample_tree();
  const machine::MachinePreset& wm = *machine::find_machine_preset("westmere");
  SweepGrid grid;
  grid.thread_counts = {2, 8, 12};
  grid.memory_models = {false, true};

  const MachineSweepResult res = sweep_machines(t, {&wm, 1}, grid);
  ASSERT_EQ(res.machines.size(), 1u);

  SweepGrid plain = grid;
  plain.base.machine = wm.machine;
  plain.base.dram_stall = wm.cost.dram;
  const SweepResult want = [&] {
    tree::ProgramTree copy;
    copy.root = t.root->clone();
    if (grid.memory_models.size() > 1) {
      // sweep_machines calibrates burdens when the grid asks for the
      // memory model; mirror that here.
      memmodel::CalibrationOptions copts;
      copts.machine = wm.machine;
      copts.dram_stall = wm.cost.dram;
      const memmodel::BurdenModel model(memmodel::calibrate(copts));
      memmodel::annotate_burdens(copy, model, plain.thread_counts);
    }
    return sweep(copy, plain);
  }();

  ASSERT_EQ(res.machines[0].result.cells.size(), want.cells.size());
  for (std::size_t i = 0; i < want.cells.size(); ++i) {
    EXPECT_DOUBLE_EQ(res.machines[0].result.cells[i].estimate.speedup,
                     want.cells[i].estimate.speedup)
        << i;
  }
}

TEST(MachineSweep, BigLlcPresetSeesFewerMissesAndMoreCores) {
  const tree::ProgramTree t = sample_tree();
  const std::vector<machine::MachinePreset> presets = {
      *machine::find_machine_preset("westmere"),
      *machine::find_machine_preset("epyc"),
  };
  SweepGrid grid;
  grid.thread_counts = {24};
  // Counters reach prediction through the memory model (plain emulation
  // prices the task structure only), so the machine-differentiating path is
  // the burden annotation computed from each preset's projected counters.
  grid.memory_models = {true};

  const MachineSweepResult res = sweep_machines(t, presets, grid);
  ASSERT_EQ(res.machines.size(), 2u);
  // Westmere misses on the 250k-line reuses (MPI 0.01 → β > 1 at 24
  // threads); epyc's 64 MB LLC absorbs them, dropping its projected MPI
  // below the burden floor (β = 1). The big-LLC machine must predict
  // strictly faster.
  EXPECT_GT(res.machines[1].result.cells[0].estimate.speedup,
            res.machines[0].result.cells[0].estimate.speedup);
}

TEST(MachineSweep, SectionsWithoutHistogramsStillSweep) {
  tree::TreeBuilder b;
  b.u(100);
  b.begin_sec("plain");
  b.begin_task("t").u(500).end_task().repeat_last(8);
  b.end_sec();
  const tree::ProgramTree t = b.finish();

  const machine::MachinePreset& sk = *machine::find_machine_preset("skylake");
  SweepGrid grid;
  const MachineSweepResult res = sweep_machines(t, {&sk, 1}, grid);
  ASSERT_EQ(res.machines.size(), 1u);
  EXPECT_EQ(res.machines[0].projected_sections, 0u);
  EXPECT_EQ(res.machines[0].result.cells.size(), grid.size());
}

}  // namespace
}  // namespace pprophet::core
