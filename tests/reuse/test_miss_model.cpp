#include "reuse/miss_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "cachesim/cache.hpp"
#include "reuse/collector.hpp"
#include "tree/builder.hpp"
#include "util/rng.hpp"

namespace pprophet::reuse {
namespace {

constexpr std::uint64_t kLine = 64;

TEST(HitProbability, FullyAssociativeIsExactThreshold) {
  for (const std::uint64_t ways : {1u, 8u, 128u}) {
    for (std::uint64_t d = 0; d < 2 * ways; ++d) {
      EXPECT_EQ(MissModel::hit_probability(d, 1, ways), d < ways ? 1.0 : 0.0);
    }
  }
}

TEST(HitProbability, SetAssociativeIsMonotoneAndBounded) {
  double prev = 1.0;
  for (std::uint64_t d = 0; d < 100'000; d = d * 2 + 1) {
    const double p = MissModel::hit_probability(d, 64, 8);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_LE(p, prev + 1e-12);  // more intervening lines: never likelier
    prev = p;
  }
  // d below the way count cannot evict the line regardless of placement.
  EXPECT_EQ(MissModel::hit_probability(7, 64, 8), 1.0);
  // Far beyond capacity the hit probability collapses (no NaN/overflow).
  EXPECT_NEAR(MissModel::hit_probability(1ULL << 40, 64, 8), 0.0, 1e-9);
}

/// A random-ish access stream shared by the exactness tests.
std::vector<std::uint64_t> test_stream() {
  util::Xoshiro256 rng(7);
  std::vector<std::uint64_t> lines;
  lines.reserve(30'000);
  for (int i = 0; i < 30'000; ++i) {
    // Hot set + cool spread + a sequential sweep segment.
    const std::uint64_t r = rng();
    if (r % 4 == 0) {
      lines.push_back(r % 64);
    } else if (r % 4 == 1) {
      lines.push_back(static_cast<std::uint64_t>(i) % 700);
    } else {
      lines.push_back(r % 2048);
    }
  }
  return lines;
}

ReuseHistogram collect(const std::vector<std::uint64_t>& lines) {
  ReuseCollector c((cachesim::CacheConfig{}));
  c.window_start();
  for (const std::uint64_t l : lines) {
    c.on_access(l * kLine, 8, vcpu::AccessKind::Read);
  }
  auto h = c.window_stop();
  return *h;
}

TEST(MissModel, FullyAssociativeDramExactVsStandaloneCache) {
  // The model evaluates each level against the unfiltered stream, so its
  // DRAM count must equal a standalone fully-associative LRU cache of the
  // LLC's capacity seeing every access — exactly, because power-of-two
  // capacities sit on bucket boundaries.
  const std::vector<std::uint64_t> lines = test_stream();
  const ReuseHistogram h = collect(lines);

  for (const std::uint64_t cap_lines : {256u, 1024u}) {
    cachesim::Cache alone({cap_lines * kLine, static_cast<std::uint32_t>(cap_lines)},
                          kLine);
    for (const std::uint64_t l : lines) alone.access(l);

    cachesim::CacheConfig target;
    target.l1 = {8 * kLine, 8};
    target.l2 = {64 * kLine, 64};
    target.llc = {cap_lines * kLine, static_cast<std::uint32_t>(cap_lines)};
    const MissModel::Prediction pred = MissModel(target).evaluate(h);
    EXPECT_EQ(pred.llc_misses(), alone.stats().misses) << cap_lines;
  }
}

TEST(MissModel, FullyAssociativeL1ExactVsHierarchy) {
  // L1 sees every access in the real hierarchy too, so its hit count must
  // match the simulator head-on.
  const std::vector<std::uint64_t> lines = test_stream();
  const ReuseHistogram h = collect(lines);

  cachesim::CacheConfig cfg;
  cfg.l1 = {128 * kLine, 128};  // fully associative
  cfg.l2 = {512 * kLine, 8};
  cfg.llc = {4096 * kLine, 16};
  cachesim::CacheHierarchy sim(cfg);
  for (const std::uint64_t l : lines) sim.access(l * kLine);

  const MissModel::Prediction pred = MissModel(cfg).evaluate(h);
  const std::uint64_t sim_l1_hits =
      sim.level(1).accesses - sim.level(1).misses;
  EXPECT_EQ(static_cast<std::uint64_t>(std::llround(pred.l1_hits)),
            sim_l1_hits);
}

TEST(MissModel, BiggerCacheNeverMissesMore) {
  const ReuseHistogram h = collect(test_stream());
  double prev = std::numeric_limits<double>::infinity();
  for (const std::uint64_t mb : {1u, 2u, 8u, 32u}) {
    cachesim::CacheConfig t;
    t.llc = {mb * 1024 * 1024, 16};
    const double dram = MissModel(t).evaluate(h).dram;
    EXPECT_LE(dram, prev + 1e-9) << mb;
    prev = dram;
  }
  // Every prediction conserves mass: level counts sum to the touches.
  cachesim::CacheConfig t;
  const MissModel::Prediction p = MissModel(t).evaluate(h);
  EXPECT_NEAR(p.l1_hits + p.l2_hits + p.llc_hits + p.dram,
              static_cast<double>(h.touches()), 1e-6);
}

TEST(ProjectCounters, IdentityOnProfiledMachine) {
  ReuseHistogram h;
  h.config = ProfiledConfig{};  // default == default CacheConfig + ω 200
  h.cold = 10;
  h.record(1);

  tree::SectionCounters measured;
  measured.instructions = 1234;
  measured.cycles = 99'999;
  measured.llc_misses = 17;
  measured.llc_writebacks = 5;
  const tree::SectionCounters out =
      project_counters(measured, h, cachesim::CacheConfig{}, 200);
  EXPECT_EQ(out.instructions, measured.instructions);
  EXPECT_EQ(out.cycles, measured.cycles);
  EXPECT_EQ(out.llc_misses, measured.llc_misses);
  EXPECT_EQ(out.llc_writebacks, measured.llc_writebacks);
}

TEST(ProjectCounters, RebuildsCyclesAndWritebacks) {
  // 6 reuses at distance 0 (hit everywhere) + 4 cold touches: any target
  // predicts exactly D′ = 4.
  ReuseHistogram h;
  h.config = ProfiledConfig{};  // ω_src = 200
  for (int i = 0; i < 6; ++i) h.record(0);
  h.cold = 4;

  tree::SectionCounters measured;
  measured.instructions = 1000;
  measured.cycles = 10'000;
  measured.llc_misses = 10;
  measured.llc_writebacks = 5;

  // Same hierarchy, different ω: projection must swap the DRAM-stall part.
  const tree::SectionCounters out =
      project_counters(measured, h, cachesim::CacheConfig{}, /*ω_dst=*/100);
  EXPECT_EQ(out.instructions, 1000u);
  EXPECT_EQ(out.llc_misses, 4u);
  // T′ = (10000 − 200·10) + 100·4 = 8400.
  EXPECT_EQ(out.cycles, 8400u);
  // Measured wb:miss ratio 0.5 → 4 · 0.5 = 2.
  EXPECT_EQ(out.llc_writebacks, 2u);
}

TEST(ProjectCounters, WritebackFallbackUsesWriteFraction) {
  ReuseHistogram h;
  h.config = ProfiledConfig{};
  h.cold = 8;
  h.record(0);
  h.record(0);
  h.writes = 5;  // 5 of 10 touches were writes

  tree::SectionCounters measured;
  measured.instructions = 100;
  measured.cycles = 5000;
  measured.llc_misses = 0;  // no measured misses: ratio undefined
  measured.llc_writebacks = 0;

  const tree::SectionCounters out =
      project_counters(measured, h, cachesim::CacheConfig{}, 100);
  EXPECT_EQ(out.llc_misses, 8u);
  EXPECT_EQ(out.llc_writebacks, 4u);  // 8 · (5/10)
}

TEST(ProjectTree, ProjectsEverySectionWithBothAnnotations) {
  tree::TreeBuilder b;
  tree::SectionCounters c;
  c.instructions = 1000;
  c.cycles = 10'000;
  c.llc_misses = 10;

  b.u(10);
  for (const char* name : {"no-reuse", "b", "c"}) {
    b.begin_sec(name);
    b.begin_task("t").u(50).end_task().repeat_last(4);
    b.counters(c).end_sec();
  }
  tree::ProgramTree t = b.finish();

  ReuseHistogram h;
  h.config = ProfiledConfig{};
  h.cold = 4;
  t.root->child(2)->set_reuse_profile(h);
  t.root->child(3)->set_reuse_profile(h);

  EXPECT_EQ(project_tree(t, cachesim::CacheConfig{}, 100), 2u);
  // Untouched: section "no-reuse" carries counters but no histogram.
  EXPECT_EQ(t.root->child(1)->counters()->llc_misses, 10u);
  EXPECT_EQ(t.root->child(1)->counters()->cycles, 10'000u);
  EXPECT_EQ(t.root->child(2)->counters()->llc_misses, 4u);
  EXPECT_EQ(t.root->child(3)->counters()->llc_misses, 4u);
}

}  // namespace
}  // namespace pprophet::reuse
