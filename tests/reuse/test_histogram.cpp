#include "reuse/histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

namespace pprophet::reuse {
namespace {

TEST(ReuseHistogramBuckets, LinearRangeIsExact) {
  for (std::uint64_t d = 0; d < ReuseHistogram::kLinearLimit; ++d) {
    const std::size_t i = ReuseHistogram::bucket_index(d);
    EXPECT_EQ(i, d);
    EXPECT_EQ(ReuseHistogram::bucket_lo(i), d);
    EXPECT_EQ(ReuseHistogram::bucket_hi(i), d + 1);
  }
}

TEST(ReuseHistogramBuckets, BoundsBracketEveryDistance) {
  // Sweep distances across several octaves (including bucket edges): every
  // distance must land in a bucket whose [lo, hi) contains it, and indices
  // must be monotone in distance.
  std::size_t prev = 0;
  for (std::uint64_t d = 0; d < (1ULL << 22); d = d < 256 ? d + 1 : d + d / 3) {
    const std::size_t i = ReuseHistogram::bucket_index(d);
    EXPECT_LE(ReuseHistogram::bucket_lo(i), d);
    EXPECT_GT(ReuseHistogram::bucket_hi(i), d);
    EXPECT_GE(i, prev);
    EXPECT_LT(i, ReuseHistogram::kMaxBuckets);
    prev = i;
  }
}

TEST(ReuseHistogramBuckets, PowersOfTwoStartBuckets) {
  // Power-of-two capacities must sit exactly on bucket boundaries so
  // fully-associative predictions lose nothing to bucketing: the first
  // bucket of each octave starts at 2^k.
  for (unsigned k = 7; k < 40; ++k) {
    const std::size_t i = ReuseHistogram::bucket_index(1ULL << k);
    EXPECT_EQ(ReuseHistogram::bucket_lo(i), 1ULL << k) << "k=" << k;
    // The access just below 2^k lives in a strictly smaller bucket.
    EXPECT_LT(ReuseHistogram::bucket_index((1ULL << k) - 1), i);
  }
}

TEST(ReuseHistogram, RecordAndTotals) {
  ReuseHistogram h;
  h.record(0);
  h.record(0);
  h.record(5);
  h.record(1000);
  h.cold = 3;
  h.writes = 2;
  EXPECT_EQ(h.reuses(), 4u);
  EXPECT_EQ(h.touches(), 7u);
  EXPECT_EQ(h.buckets[0], 2u);
  EXPECT_EQ(h.buckets[5], 1u);
  EXPECT_EQ(h.buckets[ReuseHistogram::bucket_index(1000)], 1u);
}

TEST(ReuseHistogram, TrimDropsTrailingZeros) {
  ReuseHistogram h;
  h.record(200);
  h.buckets.resize(h.buckets.size() + 16, 0);
  const std::size_t want = ReuseHistogram::bucket_index(200) + 1;
  h.trim();
  EXPECT_EQ(h.buckets.size(), want);
  // Trimming an all-zero histogram empties it entirely.
  ReuseHistogram z;
  z.buckets.assign(8, 0);
  z.trim();
  EXPECT_TRUE(z.buckets.empty());
}

TEST(ReuseHistogramMerge, EmptyIsIdentityBothWays) {
  ReuseHistogram h;
  h.config.llc_bytes = 1 << 20;  // non-default config
  h.record(3);
  h.record(300);
  h.cold = 2;
  h.writes = 1;
  const ReuseHistogram orig = h;

  ReuseHistogram empty;  // default config differs from h's — still identity
  h.merge(empty);
  EXPECT_EQ(h, orig);

  ReuseHistogram other;
  other.merge(orig);
  EXPECT_EQ(other, orig);
}

TEST(ReuseHistogramMerge, AddsBucketwise) {
  ReuseHistogram a, b;
  a.record(1);
  a.cold = 1;
  b.record(1);
  b.record(4000);
  b.writes = 5;
  a.merge(b);
  EXPECT_EQ(a.buckets[1], 2u);
  EXPECT_EQ(a.buckets[ReuseHistogram::bucket_index(4000)], 1u);
  EXPECT_EQ(a.cold, 1u);
  EXPECT_EQ(a.writes, 5u);
  EXPECT_EQ(a.reuses(), 3u);
}

TEST(ReuseHistogramMerge, MismatchedConfigsThrow) {
  ReuseHistogram a, b;
  a.record(1);
  b.record(1);
  b.config.line_bytes = 128;
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

}  // namespace
}  // namespace pprophet::reuse
