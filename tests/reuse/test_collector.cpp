#include "reuse/collector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace pprophet::reuse {
namespace {

constexpr std::uint64_t kLine = 64;

/// Reference implementation: the LRU stack as a literal vector, most recent
/// at the back. O(n) per touch — fine for test-sized streams.
class NaiveStack {
 public:
  /// Stack distance of this touch, or UINT64_MAX for a first touch.
  std::uint64_t touch(std::uint64_t line) {
    const auto it = std::find(stack_.rbegin(), stack_.rend(), line);
    if (it == stack_.rend()) {
      stack_.push_back(line);
      return UINT64_MAX;
    }
    const std::uint64_t d = static_cast<std::uint64_t>(it - stack_.rbegin());
    stack_.erase(std::next(it).base());
    stack_.push_back(line);
    return d;
  }

 private:
  std::vector<std::uint64_t> stack_;
};

ReuseCollector make_collector(std::size_t initial_slots = 1 << 16) {
  CollectorOptions opt;
  opt.initial_slots = initial_slots;
  return ReuseCollector(cachesim::CacheConfig{}, vcpu::CostModel{}, opt);
}

TEST(ReuseCollector, KnownDistances) {
  ReuseCollector c = make_collector();
  c.window_start();
  // Lines A B C A B A: three colds, then distances 2, 2, 1.
  for (const std::uint64_t l : {0u, 1u, 2u, 0u, 1u, 0u}) {
    c.on_access(l * kLine, 8, vcpu::AccessKind::Read);
  }
  const auto h = c.window_stop();
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->cold, 3u);
  EXPECT_EQ(h->reuses(), 3u);
  ASSERT_GE(h->buckets.size(), 3u);
  EXPECT_EQ(h->buckets[1], 1u);
  EXPECT_EQ(h->buckets[2], 2u);
  EXPECT_EQ(c.distinct_lines(), 3u);
}

TEST(ReuseCollector, SameLineIsDistanceZero) {
  ReuseCollector c = make_collector();
  c.window_start();
  c.on_access(128, 8, vcpu::AccessKind::Read);
  c.on_access(128, 8, vcpu::AccessKind::Read);
  c.on_access(136, 8, vcpu::AccessKind::Read);  // same 64 B line
  const auto h = c.window_stop();
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->cold, 1u);
  EXPECT_EQ(h->buckets[0], 2u);
}

TEST(ReuseCollector, StraddlingAccessTouchesEveryLine) {
  ReuseCollector c = make_collector();
  c.window_start();
  // 16 bytes at offset 56 spans lines 0 and 1.
  c.on_access(56, 16, vcpu::AccessKind::Write);
  const auto h = c.window_stop();
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->cold, 2u);
  EXPECT_EQ(h->writes, 2u);
  EXPECT_EQ(c.distinct_lines(), 2u);
}

TEST(ReuseCollector, RecencyStatePersistsAcrossWindows) {
  // Mirrors how the simulated caches carry contents across section
  // boundaries: a line touched before a window is a *reuse* inside it.
  ReuseCollector c = make_collector();
  c.window_start();
  c.on_access(0, 8, vcpu::AccessKind::Read);
  (void)c.window_stop();
  c.window_start();
  c.on_access(0, 8, vcpu::AccessKind::Read);
  const auto h = c.window_stop();
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->cold, 0u);
  EXPECT_EQ(h->buckets[0], 1u);
}

TEST(ReuseCollector, StopWithoutStartIsEmpty) {
  ReuseCollector c = make_collector();
  c.on_access(0, 8, vcpu::AccessKind::Read);  // outside any window: dropped
  EXPECT_FALSE(c.window_stop().has_value());
}

TEST(ReuseCollector, ConfigStampedFromMachine) {
  cachesim::CacheConfig cache;
  cache.llc = {1 << 20, 16};
  vcpu::CostModel cost;
  cost.dram = 123;
  ReuseCollector c(cache, cost);
  c.window_start();
  c.on_access(0, 8, vcpu::AccessKind::Read);
  const auto h = c.window_stop();
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->config.llc_bytes, 1u << 20);
  EXPECT_EQ(h->config.llc_ways, 16u);
  EXPECT_EQ(h->config.omega, 123u);
  EXPECT_EQ(h->config.line_bytes, 64u);
}

TEST(ReuseCollector, MatchesNaiveStackThroughRebuilds) {
  // Tiny slot capacity forces repeated Fenwick renumbering; the bucketed
  // histogram must still match a literal LRU stack exactly.
  ReuseCollector c = make_collector(/*initial_slots=*/64);
  NaiveStack naive;
  ReuseHistogram want;
  want.config = ProfiledConfig{};

  util::Xoshiro256 rng(42);
  c.window_start();
  for (int i = 0; i < 20'000; ++i) {
    // Zipf-ish mix: half the touches hit a hot set of 32 lines, the rest
    // spread over 4096 — exercises both short and long distances.
    const std::uint64_t line = (rng() & 1) ? rng() % 32 : rng() % 4096;
    c.on_access(line * kLine, 8, vcpu::AccessKind::Read);
    const std::uint64_t d = naive.touch(line);
    if (d == UINT64_MAX) {
      ++want.cold;
    } else {
      want.record(d);
    }
  }
  const auto got = c.window_stop();
  ASSERT_TRUE(got.has_value());
  EXPECT_GT(c.rebuilds(), 0u);
  want.trim();
  EXPECT_EQ(got->cold, want.cold);
  EXPECT_EQ(got->buckets, want.buckets);
}

}  // namespace
}  // namespace pprophet::reuse
