// Acceptance goldens for the analytical memory model (docs/MEMMODEL.md):
// profile a real kernel ONCE on one machine preset, project its sections'
// counters onto other presets with the reuse-distance model, and compare
// the predicted MPI against re-running the cache simulator on each target.
// The paper-style tolerance is 10% relative MPI error.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "machine/presets.hpp"
#include "reuse/miss_model.hpp"
#include "workloads/ompscr.hpp"

namespace pprophet::reuse {
namespace {

// All presets run 64× scaled hierarchies (machine::MachinePreset::
// scaled_cache), keeping each preset's footprint:LLC ratio while the
// kernel stays test-sized.
constexpr unsigned kShift = 6;

struct SectionSums {
  std::uint64_t instructions = 0;
  std::uint64_t misses = 0;
  double mpi() const {
    return instructions == 0 ? 0.0
                             : static_cast<double>(misses) /
                                   static_cast<double>(instructions);
  }
};

SectionSums sum_sections(const tree::ProgramTree& t) {
  SectionSums s;
  for (const auto& c : t.root->children()) {
    if (c->kind() != tree::NodeKind::Sec) continue;
    if (const tree::SectionCounters* cnt = c->counters()) {
      s.instructions += cnt->instructions;
      s.misses += cnt->llc_misses;
    }
  }
  return s;
}

workloads::JacobiParams jacobi_params() {
  workloads::JacobiParams p;
  p.n = 128;  // two 128² double grids: 4096 lines of footprint
  p.sweeps = 4;
  return p;
}

workloads::KernelRun profile_once() {
  const machine::MachinePreset& wm = *machine::find_machine_preset("westmere");
  workloads::KernelConfig cfg;
  cfg.cache = wm.scaled_cache(kShift);
  cfg.cost.dram = wm.cost.dram;
  cfg.collect_reuse = true;
  return workloads::run_jacobi(jacobi_params(), cfg);
}

TEST(ModelGoldens, ProfiledSectionsCarryHistograms) {
  const workloads::KernelRun run = profile_once();
  std::size_t with_profile = 0;
  for (const auto& c : run.tree.root->children()) {
    if (c->kind() != tree::NodeKind::Sec) continue;
    EXPECT_NE(c->counters(), nullptr);
    if (c->reuse_profile() != nullptr) {
      ++with_profile;
      EXPECT_GT(c->reuse_profile()->touches(), 0u);
    }
  }
  EXPECT_GT(with_profile, 0u);
}

TEST(ModelGoldens, MpiWithinTenPercentAcrossPresets) {
  const workloads::KernelRun profiled = profile_once();

  // Presets spanning LLC capacities below, near, and above the kernel's
  // footprint ("westmere" doubles as the identity check: same hierarchy, so
  // projection must return the measured counters verbatim). The ≤10% gate
  // holds in the capacity-dominated regimes (LLC clearly smaller or clearly
  // larger than the footprint: westmere, nehalem, epyc). The two conflict-
  // dominated mid-regime presets get documented looser bounds: the binomial
  // set-assoc correction assumes random set indexing, while jacobi's
  // strided rows spread perfectly evenly across sets — sandybridge
  // (footprint/sets just over the ways) lands near the gate, and skylake
  // (narrow 512-set LLC holding the whole footprint) over-predicts the
  // binomial tail, so there the model is held to "conservative and within
  // 2.5x" instead.
  struct Case {
    const char* name;
    double tolerance;
  };
  for (const Case c : {Case{"westmere", 0.10}, Case{"nehalem", 0.10},
                       Case{"sandybridge", 0.25}, Case{"skylake", 2.5},
                       Case{"epyc", 0.10}}) {
    const char* name = c.name;
    SCOPED_TRACE(name);
    const machine::MachinePreset& preset = *machine::find_machine_preset(name);

    // Truth: re-run the kernel with full cache simulation on the target.
    workloads::KernelConfig cfg;
    cfg.cache = preset.scaled_cache(kShift);
    cfg.cost.dram = preset.cost.dram;
    const workloads::KernelRun truth =
        workloads::run_jacobi(jacobi_params(), cfg);
    const SectionSums want = sum_sections(truth.tree);

    // Model: project the single profile onto the target hierarchy.
    tree::ProgramTree priced;
    priced.root = profiled.tree.root->clone();
    const std::size_t projected =
        project_tree(priced, preset.scaled_cache(kShift), preset.cost.dram);
    EXPECT_GT(projected, 0u);
    const SectionSums got = sum_sections(priced);

    EXPECT_EQ(got.instructions, want.instructions);
    ASSERT_GT(want.mpi(), 0.0);
    const double rel_err = std::abs(got.mpi() - want.mpi()) / want.mpi();
    EXPECT_LE(rel_err, c.tolerance)
        << "model MPI " << got.mpi() << " vs simulated " << want.mpi();
    if (c.tolerance > 0.25) {
      // Mid-regime over-prediction must at least stay conservative: the
      // binomial correction may invent conflict misses, never hide real
      // ones.
      EXPECT_GE(got.mpi(), want.mpi() * 0.9);
    }
  }
}

TEST(ModelGoldens, ProfilingDoesNotPerturbTheMeasurement) {
  // collect_reuse taps the access stream before cache simulation; the
  // numerical result and the instruction stream must be identical with and
  // without it. Miss counts get a hair of slack: InstrumentedArray feeds
  // real heap addresses to the simulator, and the collector's own
  // allocations shift where the kernel's arrays land, which can move a
  // couple of lines across set boundaries. That is allocator-layout noise,
  // not profiling overhead — the dram stall cost below pins it to O(1)
  // lines out of tens of thousands.
  const machine::MachinePreset& wm = *machine::find_machine_preset("westmere");
  workloads::KernelConfig plain;
  plain.cache = wm.scaled_cache(kShift);
  const workloads::KernelRun without =
      workloads::run_jacobi(jacobi_params(), plain);
  const workloads::KernelRun with = profile_once();
  EXPECT_DOUBLE_EQ(without.checksum, with.checksum);
  EXPECT_EQ(without.instructions, with.instructions);
  const auto drift = [](std::uint64_t a, std::uint64_t b) {
    return a > b ? a - b : b - a;
  };
  EXPECT_LE(drift(without.llc_misses, with.llc_misses), 8u);
  EXPECT_LE(drift(sum_sections(without.tree).misses,
                  sum_sections(with.tree).misses),
            8u);
}

}  // namespace
}  // namespace pprophet::reuse
