// Trace-sink export tests: Chrome JSON well-formedness (checked with a
// minimal hand-rolled JSON parser — no external deps), span nesting on the
// wall-clock pipeline track, and the bridge regression the FF/Gantt
// instrumentation relies on: per-thread bridged span-duration sums equal
// machine::Timeline::busy / lock_wait exactly.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>

#include "core/sweep.hpp"
#include "emul/ff.hpp"
#include "machine/timeline.hpp"
#include "obs/metrics.hpp"
#include "runtime/omp_executor.hpp"
#include "tree/builder.hpp"

namespace pprophet::obs {
namespace {

// --- minimal JSON well-formedness checker -------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    ws();
    if (!value()) return false;
    ws();
    return i_ == s_.size();
  }

 private:
  void ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }
  bool lit(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(i_, n, word) != 0) return false;
    i_ += n;
    return true;
  }
  bool string() {
    if (i_ >= s_.size() || s_[i_] != '"') return false;
    ++i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') {
        ++i_;
        if (i_ >= s_.size()) return false;
      }
      ++i_;
    }
    if (i_ >= s_.size()) return false;
    ++i_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = i_;
    if (i_ < s_.size() && s_[i_] == '-') ++i_;
    while (i_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
                              s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
                              s_[i_] == '+' || s_[i_] == '-')) {
      ++i_;
    }
    return i_ > start;
  }
  bool object() {
    ++i_;  // '{'
    ws();
    if (i_ < s_.size() && s_[i_] == '}') {
      ++i_;
      return true;
    }
    for (;;) {
      ws();
      if (!string()) return false;
      ws();
      if (i_ >= s_.size() || s_[i_] != ':') return false;
      ++i_;
      ws();
      if (!value()) return false;
      ws();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        continue;
      }
      break;
    }
    if (i_ >= s_.size() || s_[i_] != '}') return false;
    ++i_;
    return true;
  }
  bool array() {
    ++i_;  // '['
    ws();
    if (i_ < s_.size() && s_[i_] == ']') {
      ++i_;
      return true;
    }
    for (;;) {
      ws();
      if (!value()) return false;
      ws();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        continue;
      }
      break;
    }
    if (i_ >= s_.size() || s_[i_] != ']') return false;
    ++i_;
    return true;
  }
  bool value() {
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return lit("true");
      case 'f': return lit("false");
      case 'n': return lit("null");
      default: return number();
    }
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

std::string export_json(const TraceSink& sink) {
  std::ostringstream os;
  sink.write_chrome_json(os);
  return os.str();
}

/// A section with uneven tasks and a contended lock: forces both run spans
/// and lock-wait spans out of the FF schedule.
tree::ProgramTree contended_tree() {
  tree::TreeBuilder b;
  b.begin_sec("work");
  for (int i = 0; i < 8; ++i) {
    b.begin_task("t");
    b.u(100 + 25 * static_cast<Cycles>(i));
    b.l(1, 80);
    b.end_task();
  }
  b.end_sec();
  return b.finish();
}

TEST(TraceExport, EmptySinkIsValidJson) {
  TraceSink sink;
  const std::string json = export_json(sink);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
}

TEST(TraceExport, EventsSurviveRoundTripWithEscapes) {
  TraceSink sink;
  sink.complete("na\"me\\with\nescapes", "cat", kPidPipeline, 0, 10, 5,
                {arg_str("key", "va\"lue"), arg_num("n", std::uint64_t{7})});
  sink.instant("mark", "cat", kPidPipeline, 12);
  sink.counter("depth", kPidPipeline, 13, 3.5);
  const std::string json = export_json(sink);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"n\":7"), std::string::npos);
}

TEST(TraceExport, ScopedSpansNest) {
  TraceSink sink;
  TraceSink::set_current(&sink);
  {
    ScopedSpan outer("outer");
    { ScopedSpan inner("inner"); }
  }
  TraceSink::set_current(nullptr);

  TraceEvent outer_ev, inner_ev;
  for (const TraceEvent& e : sink.events()) {
    if (e.name == "outer") outer_ev = e;
    if (e.name == "inner") inner_ev = e;
  }
  ASSERT_EQ(outer_ev.name, "outer");
  ASSERT_EQ(inner_ev.name, "inner");
  // Proper containment on the same track: inner ⊆ outer.
  EXPECT_EQ(outer_ev.pid, kPidPipeline);
  EXPECT_EQ(inner_ev.pid, outer_ev.pid);
  EXPECT_GE(inner_ev.ts, outer_ev.ts);
  EXPECT_LE(inner_ev.ts + inner_ev.dur, outer_ev.ts + outer_ev.dur);
}

TEST(TraceExport, ScopedSpanNoSinkIsNoop) {
  TraceSink::set_current(nullptr);
  ScopedSpan span("orphan");  // must not crash or register anywhere
  span.annotate(arg_num("x", 1.0));
}

// The core regression: bridging a Timeline into the trace preserves the
// per-thread busy / lock-wait totals exactly (1 cycle = 1 us).
void expect_bridge_matches(const machine::Timeline& timeline) {
  TraceSink sink;
  bridge_timeline(timeline, sink, kPidEmulation, "emulation");

  std::map<std::uint32_t, std::uint64_t> run_sum, wait_sum;
  for (const TraceEvent& e : sink.events()) {
    if (e.phase != 'X') continue;
    ASSERT_EQ(e.pid, kPidEmulation);
    if (e.name == "run") run_sum[e.tid] += e.dur;
    if (e.name == "lock wait") wait_sum[e.tid] += e.dur;
  }
  for (std::uint32_t t = 0; t < timeline.thread_count(); ++t) {
    EXPECT_EQ(run_sum[t], timeline.busy(t)) << "thread " << t;
    EXPECT_EQ(wait_sum[t], timeline.lock_wait(t)) << "thread " << t;
  }

  const std::string json = export_json(sink);
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("vcpu 0"), std::string::npos);  // thread metadata
}

TEST(TraceExport, FfTimelineBridgeSumsMatch) {
  const tree::ProgramTree t = contended_tree();
  machine::Timeline timeline;
  emul::FfConfig cfg;
  cfg.num_threads = 4;
  cfg.timeline = &timeline;
  const emul::FfResult r = emulate_ff_section(*t.root->child(0), cfg);
  ASSERT_GT(r.parallel_cycles, 0u);
  ASSERT_FALSE(timeline.spans().empty());
  // The contended lock must produce at least one wait span, or the
  // regression test is vacuous.
  Cycles waits = 0;
  for (std::uint32_t th = 0; th < timeline.thread_count(); ++th) {
    waits += timeline.lock_wait(th);
  }
  ASSERT_GT(waits, 0u);
  expect_bridge_matches(timeline);
}

TEST(TraceExport, FfTimelineIsOptional) {
  // Same emulation without a timeline: identical result, no spans recorded.
  const tree::ProgramTree t = contended_tree();
  emul::FfConfig with, without;
  with.num_threads = without.num_threads = 4;
  machine::Timeline timeline;
  with.timeline = &timeline;
  EXPECT_EQ(emulate_ff_section(*t.root->child(0), with).parallel_cycles,
            emulate_ff_section(*t.root->child(0), without).parallel_cycles);
}

TEST(TraceExport, MachineTimelineBridgeSumsMatch) {
  // The synthesizer/ground-truth path: the simulated machine records into
  // the Timeline via ExecMode::timeline.
  const tree::ProgramTree t = contended_tree();
  machine::Timeline timeline;
  runtime::ExecMode mode = runtime::ExecMode::real();
  mode.timeline = &timeline;
  machine::MachineConfig mcfg;
  mcfg.cores = 4;
  runtime::OmpConfig cfg;
  cfg.num_threads = 4;
  const runtime::RunResult r =
      runtime::run_section_omp(*t.root->child(0), mcfg, cfg, mode);
  ASSERT_GT(r.elapsed, 0u);
  ASSERT_FALSE(timeline.spans().empty());
  expect_bridge_matches(timeline);
}

TEST(TraceExport, PredictOptionsTimelinePlumbing) {
  // core::predict forwards PredictOptions::timeline to the FF engine.
  const tree::ProgramTree t = contended_tree();
  machine::Timeline timeline;
  core::PredictOptions po;
  po.method = core::Method::FastForward;
  po.timeline = &timeline;
  const core::SpeedupEstimate est = core::predict(t, 4, po);
  EXPECT_GT(est.speedup, 0.0);
  EXPECT_FALSE(timeline.spans().empty());
  expect_bridge_matches(timeline);
}

// `--metrics` numbers must agree with the sweep engine's own accounting.
TEST(SweepMetrics, RegistryMatchesSweepStats) {
  const bool prev = enabled();
  set_enabled(true);
  MetricsRegistry::global().reset();

  const tree::ProgramTree t = contended_tree();
  core::SweepGrid grid;
  grid.methods = {core::Method::FastForward, core::Method::Suitability};
  grid.thread_counts = {2, 4, 8};
  grid.schedules = {runtime::OmpSchedule::StaticCyclic,
                    runtime::OmpSchedule::StaticBlock};
  core::SweepOptions sopts;
  sopts.workers = 3;
  const core::SweepResult res = core::sweep(t, grid, sopts);
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  set_enabled(prev);

  const auto counter = [&](std::string_view name) -> std::uint64_t {
    for (const auto& [n, v] : snap.counters) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  EXPECT_EQ(counter("sweep.grid_points"), res.stats.grid_points);
  EXPECT_EQ(counter("sweep.memo.lookups"), res.stats.section_lookups);
  EXPECT_EQ(counter("sweep.memo.hits"), res.stats.cache_hits);
  EXPECT_EQ(counter("sweep.memo.evals"), res.stats.section_evals);
  EXPECT_EQ(counter("sweep.runs"), 1u);

  ASSERT_EQ(res.stats.worker_wall_ms.size(), res.stats.workers);
  for (const auto& [n, stat] : snap.timers) {
    if (n == "sweep.worker_wall_us") {
      EXPECT_EQ(stat.count, res.stats.workers);
    }
  }
}

TEST(SweepMetrics, WorkerSpansLandOnTrace) {
  TraceSink sink;
  TraceSink::set_current(&sink);
  const tree::ProgramTree t = contended_tree();
  core::SweepGrid grid;
  grid.methods = {core::Method::FastForward};
  grid.thread_counts = {2, 4};
  core::SweepOptions sopts;
  sopts.workers = 2;
  core::sweep(t, grid, sopts);
  TraceSink::set_current(nullptr);

  int worker_spans = 0;
  for (const TraceEvent& e : sink.events()) {
    if (e.phase == 'X' && e.name.rfind("sweep worker", 0) == 0) {
      ++worker_spans;
    }
  }
  EXPECT_EQ(worker_spans, 2);
}

}  // namespace
}  // namespace pprophet::obs
