// obs::EventLog unit tests: JSONL shape, severity policy, 1-in-N sampling,
// the slow-request threshold that overrides sampling, and (under the
// `concurrency` label / TSAN build) serialized writes from a thread pool.
#include "obs/event_log.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace pprophet::obs {
namespace {

std::vector<std::string> lines_of(const std::ostringstream& out) {
  std::vector<std::string> lines;
  std::istringstream in(out.str());
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

TEST(EventLog, WritesOneJsonObjectPerLine) {
  std::ostringstream out;
  EventLog log(out);
  LogRecord rec("request");
  rec.str("op", "predict").u64("conn", 3).boolean("cache_hit", true);
  EXPECT_TRUE(log.write(Severity::Info, rec, 1500));
  const auto lines = lines_of(out);
  ASSERT_EQ(lines.size(), 1u);
  const std::string& l = lines[0];
  EXPECT_EQ(l.front(), '{');
  EXPECT_EQ(l.back(), '}');
  EXPECT_NE(l.find("\"sev\":\"info\""), std::string::npos);
  EXPECT_NE(l.find("\"event\":\"request\""), std::string::npos);
  EXPECT_NE(l.find("\"op\":\"predict\""), std::string::npos);
  EXPECT_NE(l.find("\"conn\":3"), std::string::npos);
  EXPECT_NE(l.find("\"cache_hit\":true"), std::string::npos);
  EXPECT_NE(l.find("\"duration_us\":1500"), std::string::npos);
  EXPECT_NE(l.find("\"ts_us\":"), std::string::npos);
  EXPECT_EQ(log.written(), 1u);
}

TEST(EventLog, FieldValuesAreJsonEscaped) {
  std::ostringstream out;
  EventLog log(out);
  LogRecord rec("request");
  rec.str("message", "he said \"hi\"\nback\\slash");
  log.write(Severity::Warn, rec);
  const std::string l = out.str();
  EXPECT_NE(l.find("he said \\\"hi\\\"\\nback\\\\slash"), std::string::npos);
}

TEST(EventLog, SamplingKeepsOneInN) {
  std::ostringstream out;
  EventLog::Options o;
  o.sample_every = 4;
  EventLog log(out, o);
  int kept = 0;
  for (int i = 0; i < 20; ++i) {
    if (log.write(Severity::Info, LogRecord("tick"))) ++kept;
  }
  EXPECT_EQ(kept, 5);
  EXPECT_EQ(log.written(), 5u);
  EXPECT_EQ(log.sampled_out(), 15u);
  EXPECT_EQ(lines_of(out).size(), 5u);
}

TEST(EventLog, WarnAndErrorBypassSampling) {
  std::ostringstream out;
  EventLog::Options o;
  o.sample_every = 1000;  // drop virtually all info records
  EventLog log(out, o);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(log.write(Severity::Warn, LogRecord("warn")));
    EXPECT_TRUE(log.write(Severity::Error, LogRecord("err")));
  }
  EXPECT_EQ(log.written(), 20u);
}

TEST(EventLog, SlowRequestsAlwaysLog) {
  std::ostringstream out;
  EventLog::Options o;
  o.sample_every = 1000;
  o.slow_us = 5000;
  EventLog log(out, o);
  // Fast info records get sampled away (the first one passes, tick 0)...
  EXPECT_TRUE(log.write(Severity::Info, LogRecord("fast"), 100));
  EXPECT_FALSE(log.write(Severity::Info, LogRecord("fast"), 100));
  // ...but anything at or above the threshold is always written, tagged.
  EXPECT_TRUE(log.write(Severity::Info, LogRecord("slow"), 5000));
  EXPECT_TRUE(log.write(Severity::Info, LogRecord("slower"), 99999));
  const std::string text = out.str();
  EXPECT_NE(text.find("\"slow\":true"), std::string::npos);
  EXPECT_EQ(log.written(), 3u);
}

TEST(EventLog, ZeroSlowThresholdDisablesSlowTagging) {
  std::ostringstream out;
  EventLog log(out);  // slow_us = 0: off
  log.write(Severity::Info, LogRecord("r"), 1 << 30);
  EXPECT_EQ(out.str().find("\"slow\""), std::string::npos);
}

TEST(EventLog, NonFiniteDoublesRenderAsNull) {
  std::ostringstream out;
  EventLog log(out);
  LogRecord rec("r");
  rec.f64("nanv", std::nan("")).f64("finite", 2.5);
  log.write(Severity::Info, rec);
  EXPECT_NE(out.str().find("\"nanv\":null"), std::string::npos);
  EXPECT_NE(out.str().find("\"finite\":2.5"), std::string::npos);
}

TEST(EventLog, CurrentPointerInstallAndRestore) {
  EXPECT_EQ(EventLog::current(), nullptr);
  std::ostringstream out;
  EventLog log(out);
  EventLog::set_current(&log);
  EXPECT_EQ(EventLog::current(), &log);
  EventLog::set_current(nullptr);
  EXPECT_EQ(EventLog::current(), nullptr);
}

// Writers from many threads: every surviving record is one intact JSON line
// (the writes are mutex-serialized). Runs under TSAN via
// PPROPHET_SANITIZE=thread (ctest -L concurrency).
TEST(EventLog, ConcurrentWritersProduceIntactLines) {
  std::ostringstream out;
  EventLog log(out);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    pool.emplace_back([&, w] {
      for (int i = 0; i < kPerThread; ++i) {
        LogRecord rec("hammer");
        rec.u64("writer", static_cast<std::uint64_t>(w))
            .u64("i", static_cast<std::uint64_t>(i));
        log.write(Severity::Info, rec);
      }
    });
  }
  for (std::thread& th : pool) th.join();
  const auto lines = lines_of(out);
  ASSERT_EQ(lines.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  for (const std::string& l : lines) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
    EXPECT_NE(l.find("\"event\":\"hammer\""), std::string::npos);
  }
  EXPECT_EQ(log.written(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace pprophet::obs
