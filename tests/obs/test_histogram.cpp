// obs::Histogram unit tests: bucket geometry, quantile accuracy against a
// sorted reference, snapshot/merge identities, and (under the `concurrency`
// label / TSAN build) lossless concurrent recording and cross-thread merges.
#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace pprophet::obs {
namespace {

/// Exact percentile of a sorted sample vector using the same nearest-rank
/// convention as HistogramSnapshot::quantile (ceil(p * n)-th sample).
std::uint64_t sorted_quantile(const std::vector<std::uint64_t>& sorted,
                              double p) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

TEST(Histogram, BucketGeometryIsExactBelowSubCount) {
  for (std::uint64_t v = 0; v < Histogram::kSubCount; ++v) {
    const std::uint32_t i = Histogram::bucket_index(v);
    EXPECT_EQ(Histogram::bucket_lower(i), v);
    EXPECT_EQ(Histogram::bucket_width(i), 1u);
    EXPECT_EQ(Histogram::bucket_mid(i), v);
  }
}

TEST(Histogram, BucketGeometryCoversAndNests) {
  // Every value maps into a bucket whose [lower, lower+width) range
  // contains it, and the relative width never exceeds 1/kSubCount.
  const std::uint64_t probes[] = {
      64,  65,  127,  128,  1000,    4096,     65535,
      1u << 20, (1u << 20) + 17, std::uint64_t{1} << 40,
      std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : probes) {
    const std::uint32_t i = Histogram::bucket_index(v);
    ASSERT_LT(i, Histogram::kBucketCount) << v;
    const std::uint64_t lo = Histogram::bucket_lower(i);
    const std::uint64_t w = Histogram::bucket_width(i);
    EXPECT_LE(lo, v) << v;
    EXPECT_LT(v - lo, w) << v;
    EXPECT_LE(static_cast<double>(w),
              static_cast<double>(v) / Histogram::kSubCount + 1.0)
        << v;
  }
}

TEST(Histogram, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.total, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.quantile(0.5), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (std::uint64_t v = 0; v < Histogram::kSubCount; ++v) h.record(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, Histogram::kSubCount);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, Histogram::kSubCount - 1);
  // Unit buckets: quantiles of a 0..63 uniform sample are exact.
  EXPECT_EQ(s.quantile(0.5), 31u);
  EXPECT_EQ(s.quantile(1.0), 63u);
  // p=0 clamps to the smallest recorded sample.
  EXPECT_EQ(s.quantile(0.0), 0u);
}

TEST(Histogram, TotalAndExtremaAreExact) {
  Histogram h;
  std::uint64_t sum = 0;
  for (const std::uint64_t v : {7u, 1000u, 123456u, 3u, 999999u}) {
    h.record(v);
    sum += v;
  }
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.total, sum);  // totals are exact sums, not bucket estimates
  EXPECT_EQ(s.min, 3u);
  EXPECT_EQ(s.max, 999999u);
}

// The headline guarantee: quantiles land within 2% of the exact
// nearest-rank percentile for a heavy-tailed sample (docs/OBSERVABILITY.md).
TEST(Histogram, QuantileAccuracyVsSortedReference) {
  util::Xoshiro256 rng(1234567);
  Histogram h;
  std::vector<std::uint64_t> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform over ~[1, 1e7]: exercises many powers of two.
    const double exponent = rng.uniform_double() * 7.0;
    const auto v = static_cast<std::uint64_t>(std::pow(10.0, exponent));
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  const HistogramSnapshot s = h.snapshot();
  for (const double p : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999}) {
    const std::uint64_t exact = sorted_quantile(samples, p);
    const std::uint64_t approx = s.quantile(p);
    const double rel =
        std::abs(static_cast<double>(approx) - static_cast<double>(exact)) /
        std::max<double>(1.0, static_cast<double>(exact));
    EXPECT_LE(rel, 0.02) << "p=" << p << " exact=" << exact
                         << " approx=" << approx;
  }
}

TEST(Histogram, ResetZeroes) {
  Histogram h;
  h.record(5);
  h.record(500);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_TRUE(s.buckets.empty());
  h.record(9);  // still usable after reset
  EXPECT_EQ(h.quantile(0.5), 9u);
}

// merge(): recording a sample set split across two histograms and merging
// must equal recording everything into one histogram.
TEST(Histogram, MergeIdentity) {
  util::Xoshiro256 rng(42);
  Histogram a, b, whole;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_u64(0, 1000000);
    (i % 2 == 0 ? a : b).record(v);
    whole.record(v);
  }
  a.merge(b);
  const HistogramSnapshot merged = a.snapshot();
  const HistogramSnapshot reference = whole.snapshot();
  EXPECT_EQ(merged.count, reference.count);
  EXPECT_EQ(merged.total, reference.total);
  EXPECT_EQ(merged.min, reference.min);
  EXPECT_EQ(merged.max, reference.max);
  EXPECT_EQ(merged.buckets, reference.buckets);
  for (const double p : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(merged.quantile(p), reference.quantile(p));
  }
}

TEST(Histogram, SnapshotMergeMatchesHistogramMerge) {
  Histogram a, b;
  for (std::uint64_t v = 1; v <= 100; ++v) a.record(v * 3);
  for (std::uint64_t v = 1; v <= 100; ++v) b.record(v * 7919);
  HistogramSnapshot sa = a.snapshot();
  sa.merge(b.snapshot());
  a.merge(b);
  const HistogramSnapshot reference = a.snapshot();
  EXPECT_EQ(sa.count, reference.count);
  EXPECT_EQ(sa.total, reference.total);
  EXPECT_EQ(sa.min, reference.min);
  EXPECT_EQ(sa.max, reference.max);
  EXPECT_EQ(sa.buckets, reference.buckets);
}

TEST(Histogram, MergingEmptySnapshotsIsIdentity) {
  Histogram h;
  h.record(10);
  HistogramSnapshot s = h.snapshot();
  s.merge(HistogramSnapshot{});  // empty right side: no-op
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 10u);
  HistogramSnapshot empty;
  empty.merge(s);  // empty left side: becomes the right side
  EXPECT_EQ(empty.count, 1u);
  EXPECT_EQ(empty.min, 10u);
  EXPECT_EQ(empty.max, 10u);
}

// The serve-path contract: recording from many threads through one shared
// histogram loses no samples and keeps the exact fields exact. Runs under
// TSAN via PPROPHET_SANITIZE=thread (ctest -L concurrency).
TEST(Histogram, ConcurrentRecordingIsLossless) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    pool.emplace_back([&, w] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(w * kPerThread + i) + 1);
      }
    });
  }
  for (std::thread& th : pool) th.join();
  const HistogramSnapshot s = h.snapshot();
  constexpr std::uint64_t kN =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(s.count, kN);
  EXPECT_EQ(s.total, kN * (kN + 1) / 2);  // 1..N each exactly once
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, kN);
}

// Per-thread histograms merged after the fact equal one shared histogram —
// the aggregation bench_serve_throughput's client fleet relies on.
TEST(Histogram, CrossThreadMergeIdentity) {
  constexpr int kThreads = 6;
  constexpr int kPerThread = 10000;
  std::vector<Histogram> shards(kThreads);
  Histogram shared;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    pool.emplace_back([&, w] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(w) + 1);
      for (int i = 0; i < kPerThread; ++i) {
        const auto v = rng.uniform_u64(1, 100000);
        shards[static_cast<std::size_t>(w)].record(v);
        shared.record(v);
      }
    });
  }
  for (std::thread& th : pool) th.join();
  Histogram merged;
  for (const Histogram& s : shards) merged.merge(s);
  const HistogramSnapshot a = merged.snapshot();
  const HistogramSnapshot b = shared.snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.buckets, b.buckets);
}

}  // namespace
}  // namespace pprophet::obs
