// Metrics registry unit tests: handle stability, reset semantics, gating,
// and (under the `concurrency` ctest label / TSAN build) exactness of
// concurrent increments from a worker pool.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <thread>
#include <vector>

namespace pprophet::obs {
namespace {

/// Tests mutate the process-global enabled flag; restore it on exit so test
/// order does not matter.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prev_ = enabled();
    set_enabled(true);
  }
  void TearDown() override { set_enabled(prev_); }

 private:
  bool prev_ = false;
};

TEST_F(MetricsTest, CounterAccumulates) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a.count");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST_F(MetricsTest, SameNameSameHandle) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = reg.gauge("x");  // separate namespace from counters
  Gauge& g2 = reg.gauge("x");
  EXPECT_EQ(&g1, &g2);
}

TEST_F(MetricsTest, ResetZeroesButKeepsHandles) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  Timer& t = reg.timer("t");
  c.add(7);
  g.set(3.5);
  t.record(10);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);  // the same handle, now zero
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(t.stat().count, 0u);
  c.add(1);  // handle still wired into the registry
  EXPECT_EQ(reg.snapshot().counters.at(0).second, 1u);
}

TEST_F(MetricsTest, GaugeSetMaxIsMonotone) {
  Gauge g;
  g.set_max(2.0);
  g.set_max(1.0);
  EXPECT_EQ(g.value(), 2.0);
  g.set_max(5.5);
  EXPECT_EQ(g.value(), 5.5);
}

TEST_F(MetricsTest, TimerStats) {
  Timer t;
  t.record(10);
  t.record(30);
  t.record(20);
  const TimerStat s = t.stat();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.total, 60u);
  EXPECT_EQ(s.min, 10u);
  EXPECT_EQ(s.max, 30u);
  EXPECT_DOUBLE_EQ(s.mean(), 20.0);
}

TEST_F(MetricsTest, SnapshotSortedByName) {
  MetricsRegistry reg;
  reg.counter("b").add(2);
  reg.counter("a").add(1);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a");
  EXPECT_EQ(snap.counters[1].first, "b");
}

TEST_F(MetricsTest, DisabledGuardSkipsConvenienceHelpers) {
  set_enabled(false);
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.reset();
  count("gating.counter", 5);
  gauge_set("gating.gauge", 1.0);
  time_record("gating.timer", 9);
  set_enabled(true);
  // Nothing was registered while disabled: the names are absent (or zero if
  // an earlier test registered them through the global registry).
  for (const auto& [name, v] : reg.snapshot().counters) {
    if (name == "gating.counter") EXPECT_EQ(v, 0u);
  }
  count("gating.counter", 5);
  bool found = false;
  for (const auto& [name, v] : reg.snapshot().counters) {
    if (name == "gating.counter") {
      found = true;
      EXPECT_EQ(v, 5u);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(MetricsTest, RenderFormats) {
  MetricsRegistry reg;
  reg.counter("events").add(3);
  reg.gauge("beta").set(1.25);
  reg.timer("stage_us").record(100);
  const MetricsSnapshot snap = reg.snapshot();

  std::ostringstream text;
  snap.render_text(text);
  EXPECT_NE(text.str().find("events"), std::string::npos);
  EXPECT_NE(text.str().find("beta"), std::string::npos);

  std::ostringstream csv;
  snap.render_csv(csv);
  EXPECT_NE(csv.str().find("events,counter"), std::string::npos);

  std::ostringstream json;
  snap.render_json(json);
  EXPECT_NE(json.str().find("\"counters\""), std::string::npos);
  EXPECT_NE(json.str().find("\"events\":3"), std::string::npos);
  EXPECT_NE(json.str().find("\"stage_us\""), std::string::npos);
}

// The contract behind instrumenting the sweep worker pool: concurrent adds
// through one cached handle lose no increments (run under TSAN via
// PPROPHET_SANITIZE=thread, ctest -L concurrency).
TEST_F(MetricsTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry reg;
  Counter& c = reg.counter("spins");
  Timer& t = reg.timer("work");
  Gauge& g = reg.gauge("hwm");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    pool.emplace_back([&, w] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add(1);
        t.record(static_cast<std::uint64_t>(i % 7) + 1);
        g.set_max(static_cast<double>(w));
      }
    });
  }
  for (std::thread& th : pool) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  const TimerStat s = t.stat();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 7u);
  EXPECT_EQ(g.value(), static_cast<double>(kThreads - 1));
}

// Concurrent *registration* of distinct names must also be safe (the first
// worker to hit a site registers it).
TEST_F(MetricsTest, ConcurrentRegistrationIsSafe) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    pool.emplace_back([&, w] {
      for (int i = 0; i < 100; ++i) {
        reg.counter("shared").add(1);
        reg.counter("worker." + std::to_string(w)).add(1);
      }
    });
  }
  for (std::thread& th : pool) th.join();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.size(), 1u + kThreads);
  for (const auto& [name, v] : snap.counters) {
    EXPECT_EQ(v, name == "shared" ? 800u : 100u) << name;
  }
}

// Regression test for the old render_json escaper: it passed a raw (signed)
// char to snprintf("\\u%04x"), so metric names containing bytes >= 0x80
// sign-extended into garbage like "\uffffffc3" — invalid JSON. The shared
// util::json_escape must emit the byte value itself.
TEST_F(MetricsTest, RenderJsonEscapesMetricNames) {
  MetricsRegistry reg;
  reg.counter("quote\"back\\slash").add(1);
  reg.counter("ctrl\x01tab\t").add(2);
  reg.counter("high\xc3\xa9" "byte").add(3);  // UTF-8 'é'
  std::ostringstream json;
  reg.snapshot().render_json(json);
  const std::string s = json.str();
  EXPECT_NE(s.find("\"quote\\\"back\\\\slash\":1"), std::string::npos);
  EXPECT_NE(s.find("\"ctrl\\u0001tab\\t\":2"), std::string::npos);
  // High bytes pass through as-is (valid inside a JSON string)...
  EXPECT_NE(s.find("\"high\xc3\xa9" "byte\":3"), std::string::npos);
  // ...and must never become the sign-extended "\uffffffXX" spelling.
  EXPECT_EQ(s.find("ffffff"), std::string::npos);
}

TEST_F(MetricsTest, RenderJsonEmitsNullForNonFiniteGauges) {
  MetricsRegistry reg;
  reg.gauge("bad").set(std::numeric_limits<double>::quiet_NaN());
  reg.gauge("inf").set(std::numeric_limits<double>::infinity());
  reg.gauge("good").set(1.5);
  std::ostringstream json;
  reg.snapshot().render_json(json);
  const std::string s = json.str();
  EXPECT_NE(s.find("\"bad\":null"), std::string::npos);
  EXPECT_NE(s.find("\"inf\":null"), std::string::npos);
  EXPECT_NE(s.find("\"good\":1.5"), std::string::npos);
}

TEST_F(MetricsTest, HistogramRegistersAndRenders) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat_us");
  EXPECT_EQ(&h, &reg.histogram("lat_us"));  // handle stability
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].first, "lat_us");
  EXPECT_EQ(snap.histograms[0].second.count, 100u);

  std::ostringstream text;
  snap.render_text(text);
  EXPECT_NE(text.str().find("histograms:"), std::string::npos);
  EXPECT_NE(text.str().find("lat_us"), std::string::npos);

  std::ostringstream csv;
  snap.render_csv(csv);
  EXPECT_NE(csv.str().find("lat_us,histogram"), std::string::npos);

  std::ostringstream json;
  snap.render_json(json);
  EXPECT_NE(json.str().find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.str().find("\"p99\""), std::string::npos);

  reg.reset();
  EXPECT_EQ(h.count(), 0u);  // same handle, now zero
}

// MetricsSnapshot::merge is how `pprophet serve --metrics` folds the
// server's private registry into the global snapshot at exit.
TEST_F(MetricsTest, SnapshotMergeFoldsAllKinds) {
  MetricsRegistry a, b;
  a.counter("shared").add(2);
  b.counter("shared").add(5);
  b.counter("only_b").add(1);
  a.gauge("depth").set(3.0);
  b.gauge("depth").set(7.0);
  a.timer("t").record(10);
  b.timer("t").record(30);
  a.histogram("h").record(1);
  b.histogram("h").record(100);
  MetricsSnapshot snap = a.snapshot();
  snap.merge(b.snapshot());
  const auto find_counter = [&](const char* name) -> std::uint64_t {
    for (const auto& [n, v] : snap.counters) {
      if (n == name) return v;
    }
    return 0;
  };
  EXPECT_EQ(find_counter("shared"), 7u);
  EXPECT_EQ(find_counter("only_b"), 1u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 7.0);  // gauges: the merged-in side wins
  ASSERT_EQ(snap.timers.size(), 1u);
  EXPECT_EQ(snap.timers[0].second.count, 2u);
  EXPECT_EQ(snap.timers[0].second.min, 10u);
  EXPECT_EQ(snap.timers[0].second.max, 30u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 2u);
  EXPECT_EQ(snap.histograms[0].second.min, 1u);
  EXPECT_EQ(snap.histograms[0].second.max, 100u);
}

TEST_F(MetricsTest, ScopedWallTimerRecords) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.reset();
  {
    ScopedWallTimer timer("test.scope_us");
    EXPECT_GE(timer.elapsed_us(), 0u);
  }
  EXPECT_EQ(reg.timer("test.scope_us").stat().count, 1u);
}

}  // namespace
}  // namespace pprophet::obs
