#include "machine/timeline.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "machine/bodies.hpp"
#include "machine/machine.hpp"
#include "runtime/omp_executor.hpp"
#include "tree/builder.hpp"

namespace pprophet::machine {
namespace {

TEST(Timeline, RecordsAndAggregates) {
  Timeline tl;
  tl.record(0, 0, 100, TimelineSpan::Kind::Run);
  tl.record(0, 100, 150, TimelineSpan::Kind::LockWait);
  tl.record(1, 0, 80, TimelineSpan::Kind::Run);
  EXPECT_EQ(tl.thread_count(), 2u);
  EXPECT_EQ(tl.horizon(), 150u);
  EXPECT_EQ(tl.busy(0), 100u);
  EXPECT_EQ(tl.lock_wait(0), 50u);
  EXPECT_EQ(tl.busy(1), 80u);
}

TEST(Timeline, EmptySpansIgnored) {
  Timeline tl;
  tl.record(0, 50, 50, TimelineSpan::Kind::Run);
  EXPECT_TRUE(tl.spans().empty());
}

TEST(Timeline, PrintRendersRowsAndGlyphs) {
  Timeline tl;
  tl.record(0, 0, 50, TimelineSpan::Kind::Run);
  tl.record(1, 50, 100, TimelineSpan::Kind::LockWait);
  std::ostringstream os;
  tl.print(os, 20);
  const std::string out = os.str();
  EXPECT_NE(out.find("thread 0"), std::string::npos);
  EXPECT_NE(out.find("thread 1"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('.'), std::string::npos);
}

TEST(Timeline, EmptyTimelinePrintsPlaceholder) {
  Timeline tl;
  std::ostringstream os;
  tl.print(os);
  EXPECT_NE(os.str().find("empty timeline"), std::string::npos);
}

TEST(Timeline, MachineRecordsRunSpans) {
  MachineConfig cfg;
  cfg.cores = 2;
  cfg.context_switch = 0;
  Machine m(cfg);
  Timeline tl;
  m.set_timeline(&tl);
  m.spawn_thread(std::make_unique<ScriptBody>(std::vector<Op>{Op::exec(500)}));
  m.spawn_thread(std::make_unique<ScriptBody>(std::vector<Op>{Op::exec(300)}));
  m.run();
  EXPECT_EQ(tl.busy(0), 500u);
  EXPECT_EQ(tl.busy(1), 300u);
  EXPECT_EQ(tl.horizon(), 500u);
}

TEST(Timeline, MachineRecordsLockWaits) {
  MachineConfig cfg;
  cfg.cores = 2;
  cfg.context_switch = 0;
  Machine m(cfg);
  Timeline tl;
  m.set_timeline(&tl);
  for (int i = 0; i < 2; ++i) {
    m.spawn_thread(std::make_unique<ScriptBody>(std::vector<Op>{
        Op::acquire(1), Op::exec(400), Op::release(1)}));
  }
  m.run();
  // The second thread waited exactly one critical-section length.
  EXPECT_EQ(tl.lock_wait(0) + tl.lock_wait(1), 400u);
}

TEST(Timeline, ExecutorRunsRecordFigure5Shape) {
  // The Figure 5 static,1 case: thread 1 (iteration I1) holds the lock
  // 100..400 while thread 0 waits 150..400.
  tree::TreeBuilder b;
  b.begin_sec("loop");
  b.begin_task("I0").u(150).l(1, 450).u(50).end_task();
  b.begin_task("I1").u(100).l(1, 300).u(200).end_task();
  b.begin_task("I2").u(150).l(1, 50).u(50).end_task();
  b.end_sec();
  const tree::ProgramTree t = b.finish();

  machine::MachineConfig mcfg;
  mcfg.cores = 2;
  mcfg.context_switch = 0;
  runtime::OmpConfig ocfg;
  ocfg.num_threads = 2;
  ocfg.schedule = runtime::OmpSchedule::StaticCyclic;
  ocfg.overheads = runtime::OmpOverheads{0, 0, 0, 0, 0, 0, 0};
  Timeline tl;
  runtime::ExecMode mode = runtime::ExecMode::real();
  mode.timeline = &tl;
  const runtime::RunResult r = runtime::run_tree_omp(t, mcfg, ocfg, mode);
  EXPECT_EQ(r.elapsed, 1150u);
  // Master (thread 0) ran I0+I2 = 900 work; worker (thread 1) ran I1 = 600.
  // (±2 cycles of event-rounding slack at span boundaries.)
  EXPECT_NEAR(static_cast<double>(tl.busy(0)), 900.0, 2.0);
  EXPECT_NEAR(static_cast<double>(tl.busy(1)), 600.0, 2.0);
  EXPECT_NEAR(static_cast<double>(tl.lock_wait(0)), 250.0, 2.0);
  EXPECT_EQ(tl.lock_wait(1), 0u);
}

}  // namespace
}  // namespace pprophet::machine
