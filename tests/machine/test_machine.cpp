#include "machine/machine.hpp"

#include <gtest/gtest.h>

#include "machine/bodies.hpp"

namespace pprophet::machine {
namespace {

MachineConfig cfg(CoreCount cores, Cycles quantum = 100'000,
                  Cycles ctx = 0) {
  MachineConfig c;
  c.cores = cores;
  c.quantum = quantum;
  c.context_switch = ctx;
  return c;
}

TEST(Machine, SingleThreadRunsToCompletion) {
  Machine m(cfg(1));
  m.spawn_thread(std::make_unique<ScriptBody>(
      std::vector<Op>{Op::exec(1000), Op::exec(500)}));
  const MachineStats s = m.run();
  EXPECT_EQ(s.finish_time, 1500u);
  EXPECT_EQ(s.spawned_threads, 1u);
  EXPECT_EQ(s.preemptions, 0u);
}

TEST(Machine, EmptyMachineFinishesAtZero) {
  Machine m(cfg(2));
  const MachineStats s = m.run();
  EXPECT_EQ(s.finish_time, 0u);
}

TEST(Machine, RunTwiceThrows) {
  Machine m(cfg(1));
  m.run();
  EXPECT_THROW(m.run(), std::logic_error);
}

TEST(Machine, ZeroCoresRejected) {
  EXPECT_THROW(Machine(cfg(0)), std::invalid_argument);
}

TEST(Machine, TwoThreadsTwoCoresRunInParallel) {
  Machine m(cfg(2));
  m.spawn_thread(std::make_unique<ScriptBody>(std::vector<Op>{Op::exec(1000)}));
  m.spawn_thread(std::make_unique<ScriptBody>(std::vector<Op>{Op::exec(1000)}));
  EXPECT_EQ(m.run().finish_time, 1000u);
}

TEST(Machine, TwoThreadsOneCoreSerialize) {
  Machine m(cfg(1, /*quantum=*/1'000'000));
  m.spawn_thread(std::make_unique<ScriptBody>(std::vector<Op>{Op::exec(1000)}));
  m.spawn_thread(std::make_unique<ScriptBody>(std::vector<Op>{Op::exec(1000)}));
  EXPECT_EQ(m.run().finish_time, 2000u);
}

TEST(Machine, PreemptionTimeSlicesOversubscribedThreads) {
  // 2 threads, 1 core, quantum far smaller than work: both should finish at
  // ~the same (doubled) time instead of one finishing at 1000.
  Machine m(cfg(1, /*quantum=*/100));
  const ThreadId a = m.spawn_thread(
      std::make_unique<ScriptBody>(std::vector<Op>{Op::exec(1000)}));
  // Observe thread a's completion through its exit event.
  m.spawn_thread(std::make_unique<ScriptBody>(std::vector<Op>{Op::exec(1000)}));
  struct Watcher : ThreadBody {
    WaitHandle evt;
    Cycles* done_at;
    explicit Watcher(WaitHandle e, Cycles* d) : evt(e), done_at(d) {}
    int phase = 0;
    std::optional<Op> next(Machine& m, ThreadId) override {
      if (phase == 0) {
        ++phase;
        return Op::wait(evt);
      }
      *done_at = m.now();
      return std::nullopt;
    }
  };
  // (watcher occupies no core while blocked)
  Cycles a_done = 0;
  m.spawn_thread(std::make_unique<Watcher>(m.exit_event(a), &a_done));
  const MachineStats s = m.run();
  EXPECT_GT(s.preemptions, 5u);
  // 2000 plus at most a cycle of rounding per preemption.
  EXPECT_GE(s.finish_time, 2000u);
  EXPECT_LE(s.finish_time, 2000u + s.preemptions);
  // With time slicing, thread a cannot finish much before the end.
  EXPECT_GT(a_done, 1700u);
}

TEST(Machine, ContextSwitchCostCharged) {
  Machine with(cfg(1, 100, /*ctx=*/10));
  with.spawn_thread(std::make_unique<ScriptBody>(std::vector<Op>{Op::exec(1000)}));
  with.spawn_thread(std::make_unique<ScriptBody>(std::vector<Op>{Op::exec(1000)}));
  const MachineStats s = with.run();
  EXPECT_GT(s.context_switches, 0u);
  EXPECT_GT(s.finish_time, 2000u);  // 2000 + switching overhead
}

TEST(Machine, MutexSerializesCriticalSections) {
  Machine m(cfg(2));
  for (int i = 0; i < 2; ++i) {
    m.spawn_thread(std::make_unique<ScriptBody>(std::vector<Op>{
        Op::acquire(1), Op::exec(1000), Op::release(1)}));
  }
  const MachineStats s = m.run();
  EXPECT_EQ(s.finish_time, 2000u);  // fully serialized
  EXPECT_EQ(s.lock_acquisitions, 2u);
  EXPECT_EQ(s.lock_contentions, 1u);
  EXPECT_EQ(s.total_lock_wait, 1000u);
}

TEST(Machine, UncontendedLocksAreFree) {
  Machine m(cfg(2));
  m.spawn_thread(std::make_unique<ScriptBody>(std::vector<Op>{
      Op::acquire(1), Op::exec(500), Op::release(1)}));
  m.spawn_thread(std::make_unique<ScriptBody>(std::vector<Op>{
      Op::acquire(2), Op::exec(500), Op::release(2)}));
  const MachineStats s = m.run();
  EXPECT_EQ(s.finish_time, 500u);
  EXPECT_EQ(s.lock_contentions, 0u);
}

TEST(Machine, FifoLockHandoffIsFair) {
  // Three threads contend; completion order must follow arrival order.
  Machine m(cfg(4, 1'000'000));
  std::vector<Cycles> done(3, 0);
  for (int i = 0; i < 3; ++i) {
    struct Body : ThreadBody {
      int idx;
      Cycles* done_at;
      Cycles stagger;
      int phase = 0;
      Body(int i, Cycles* d, Cycles st) : idx(i), done_at(d), stagger(st) {}
      std::optional<Op> next(Machine& m, ThreadId) override {
        switch (phase++) {
          case 0: return Op::exec(stagger);  // arrive staggered
          case 1: return Op::acquire(7);
          case 2: return Op::exec(100);
          case 3: return Op::release(7);
          default:
            *done_at = m.now();
            return std::nullopt;
        }
      }
    };
    m.spawn_thread(std::make_unique<Body>(i, &done[i],
                                          static_cast<Cycles>(1 + i * 10)));
  }
  m.run();
  EXPECT_LT(done[0], done[1]);
  EXPECT_LT(done[1], done[2]);
}

TEST(Machine, ReleasingUnownedLockThrows) {
  Machine m(cfg(1));
  m.spawn_thread(std::make_unique<ScriptBody>(
      std::vector<Op>{Op::exec(10), Op::release(3)}));
  EXPECT_THROW(m.run(), std::logic_error);
}

TEST(Machine, WaitOnNotifiedEventDoesNotBlock) {
  Machine m(cfg(1));
  const WaitHandle h = m.make_event();
  m.spawn_thread(std::make_unique<ScriptBody>(
      std::vector<Op>{Op::notify(h), Op::wait(h), Op::exec(100)}));
  EXPECT_EQ(m.run().finish_time, 100u);
}

TEST(Machine, WaitBlocksUntilNotify) {
  Machine m(cfg(2));
  const WaitHandle h = m.make_event();
  m.spawn_thread(std::make_unique<ScriptBody>(
      std::vector<Op>{Op::wait(h), Op::exec(10)}));
  m.spawn_thread(std::make_unique<ScriptBody>(
      std::vector<Op>{Op::exec(500), Op::notify(h)}));
  EXPECT_EQ(m.run().finish_time, 510u);
}

TEST(Machine, DeadlockIsDetected) {
  Machine m(cfg(1));
  const WaitHandle h = m.make_event();  // never notified
  m.spawn_thread(std::make_unique<ScriptBody>(std::vector<Op>{Op::wait(h)}));
  EXPECT_THROW(m.run(), std::logic_error);
}

TEST(Machine, SpawnFromRunningThread) {
  // A main thread forks a worker mid-run and joins it.
  struct Main : ThreadBody {
    int phase = 0;
    ThreadId child = kNoThread;
    std::optional<Op> next(Machine& m, ThreadId) override {
      switch (phase++) {
        case 0:
          return Op::exec(100);
        case 1:
          child = m.spawn_thread(
              std::make_unique<ScriptBody>(std::vector<Op>{Op::exec(400)}));
          return Op::exec(50);
        case 2:
          return Op::wait(m.exit_event(child));
        default:
          return std::nullopt;
      }
    }
  };
  Machine m(cfg(2));
  m.spawn_thread(std::make_unique<Main>());
  // Child starts at t=100 on the idle core, finishes at 500; main waits.
  EXPECT_EQ(m.run().finish_time, 500u);
}

TEST(Machine, GreedySchedulingUsesAllCores) {
  // 4 unequal threads on 2 cores, non-preemptive sizes: makespan equals the
  // greedy list-scheduling bound.
  Machine m(cfg(2, 1'000'000));
  m.spawn_thread(std::make_unique<ScriptBody>(std::vector<Op>{Op::exec(10)}));
  m.spawn_thread(std::make_unique<ScriptBody>(std::vector<Op>{Op::exec(5)}));
  m.spawn_thread(std::make_unique<ScriptBody>(std::vector<Op>{Op::exec(5)}));
  m.spawn_thread(std::make_unique<ScriptBody>(std::vector<Op>{Op::exec(10)}));
  // Order: c0 <- 10, c1 <- 5; t=5: c1 <- 5; t=10: c0 <- 10; finish 20.
  EXPECT_EQ(m.run().finish_time, 20u);
}

TEST(Machine, PreemptionFixesNestedImbalance) {
  // The Figure-7 situation reduced to threads: lengths 10,5,5,10 (scaled),
  // 2 cores. Non-preemptive greedy gives 20 (speedup 1.5); preemptive RR
  // sharing gives ~15 (speedup 2.0).
  const Cycles k = 100'000;  // scale so the quantum is fine-grained
  Machine nonpre(cfg(2, /*quantum=*/1'000'000'000));
  for (const Cycles len : {10 * k, 5 * k, 5 * k, 10 * k}) {
    nonpre.spawn_thread(
        std::make_unique<ScriptBody>(std::vector<Op>{Op::exec(len)}));
  }
  EXPECT_EQ(nonpre.run().finish_time, 20 * k);

  Machine pre(cfg(2, /*quantum=*/k / 10));
  for (const Cycles len : {10 * k, 5 * k, 5 * k, 10 * k}) {
    pre.spawn_thread(
        std::make_unique<ScriptBody>(std::vector<Op>{Op::exec(len)}));
  }
  const Cycles t = pre.run().finish_time;
  EXPECT_LT(t, 16 * k);  // ~15k: the paper's "real speedup 2.0"
  EXPECT_GE(t, 15 * k);
}

TEST(Machine, BusyAccountingMatchesWork) {
  Machine m(cfg(2, 1'000'000));
  m.spawn_thread(std::make_unique<ScriptBody>(std::vector<Op>{Op::exec(300)}));
  m.spawn_thread(std::make_unique<ScriptBody>(std::vector<Op>{Op::exec(700)}));
  EXPECT_EQ(m.run().total_busy, 1000u);
}

TEST(Machine, FuncBodyDrivesAdHocStateMachines) {
  Machine m(cfg(1));
  int phase = 0;
  m.spawn_thread(std::make_unique<FuncBody>(
      [&phase](Machine&, ThreadId) -> std::optional<Op> {
        switch (phase++) {
          case 0: return Op::exec(100);
          case 1: return Op::exec(50);
          default: return std::nullopt;
        }
      }));
  EXPECT_EQ(m.run().finish_time, 150u);
  EXPECT_EQ(phase, 3);
}

TEST(Machine, NotifyWakesEveryWaiter) {
  Machine m(cfg(4, 1'000'000));
  const WaitHandle h = m.make_event();
  for (int i = 0; i < 3; ++i) {
    m.spawn_thread(std::make_unique<ScriptBody>(
        std::vector<Op>{Op::wait(h), Op::exec(100)}));
  }
  m.spawn_thread(std::make_unique<ScriptBody>(
      std::vector<Op>{Op::exec(500), Op::notify(h)}));
  // All three waiters run their 100 cycles in parallel after the notify.
  EXPECT_EQ(m.run().finish_time, 600u);
}

TEST(Machine, EventStaysNotifiedForLateWaiters) {
  Machine m(cfg(2));
  const WaitHandle h = m.make_event();
  m.spawn_thread(std::make_unique<ScriptBody>(
      std::vector<Op>{Op::notify(h)}));
  m.spawn_thread(std::make_unique<ScriptBody>(
      std::vector<Op>{Op::exec(1'000), Op::wait(h), Op::exec(10)}));
  EXPECT_EQ(m.run().finish_time, 1'010u);  // wait is a no-op by then
}

TEST(Machine, MemOnlyExecUsesStallCycles) {
  Machine m(cfg(1));
  m.spawn_thread(std::make_unique<ScriptBody>(
      std::vector<Op>{Op::exec(0, 5'000, 100.0)}));
  EXPECT_EQ(m.run().finish_time, 5'000u);  // below saturation: undilated
}

// --- bandwidth contention ---

TEST(Bandwidth, NoDilationBelowSaturation) {
  BandwidthModel bw({.saturation_mbps = 6000, .log_alpha = 0.2});
  EXPECT_DOUBLE_EQ(bw.dilation(3000), 1.0);
  EXPECT_DOUBLE_EQ(bw.dilation(6000), 1.0);
}

TEST(Bandwidth, DilationGrowsBeyondSaturation) {
  BandwidthModel bw({.saturation_mbps = 6000, .log_alpha = 0.2});
  const double d2 = bw.dilation(12000);
  const double d4 = bw.dilation(24000);
  EXPECT_GT(d2, 1.0);
  EXPECT_GT(d4, d2);
  // Effective bandwidth grows only logarithmically.
  EXPECT_LT(bw.effective_bandwidth(24000), 2 * bw.effective_bandwidth(12000));
}

TEST(Machine, MemoryContentionDilatesConcurrentThreads) {
  MachineConfig c = cfg(4);
  c.bandwidth.saturation_mbps = 4000;
  // One memory-heavy thread alone: mem cycles run at full speed.
  {
    Machine m(c);
    m.spawn_thread(std::make_unique<ScriptBody>(
        std::vector<Op>{Op::exec(0, 10000, 3000)}));
    EXPECT_EQ(m.run().finish_time, 10000u);
  }
  // Four such threads: 12000 MB/s demanded of 4000 → everyone dilates.
  {
    Machine m(c);
    for (int i = 0; i < 4; ++i) {
      m.spawn_thread(std::make_unique<ScriptBody>(
          std::vector<Op>{Op::exec(0, 10000, 3000)}));
    }
    const Cycles t = m.run().finish_time;
    EXPECT_GT(t, 15000u);  // clearly slower than the no-contention 10000
  }
}

TEST(Machine, ComputeOnlyThreadsUnaffectedByBandwidth) {
  MachineConfig c = cfg(2);
  c.bandwidth.saturation_mbps = 1000;
  Machine m(c);
  m.spawn_thread(std::make_unique<ScriptBody>(
      std::vector<Op>{Op::exec(10000, 0, 0)}));
  m.spawn_thread(std::make_unique<ScriptBody>(
      std::vector<Op>{Op::exec(10000, 0, 0)}));
  EXPECT_EQ(m.run().finish_time, 10000u);
}

TEST(Machine, ContentionEndsWhenHeavyThreadFinishes) {
  // A short memory hog and a long memory task: after the hog exits, the
  // survivor speeds back up, so the finish time is between the all-dilated
  // and no-dilation extremes.
  MachineConfig c = cfg(2);
  c.bandwidth.saturation_mbps = 4000;
  c.bandwidth.log_alpha = 0.0;  // hard ceiling: dilation = demand/sat
  Machine m(c);
  m.spawn_thread(std::make_unique<ScriptBody>(
      std::vector<Op>{Op::exec(0, 2000, 4000)}));
  m.spawn_thread(std::make_unique<ScriptBody>(
      std::vector<Op>{Op::exec(0, 10000, 4000)}));
  const Cycles t = m.run().finish_time;
  // Both dilate 2x while together. Hog: 2000 mem cycles at f=2 -> done 4000.
  // Survivor consumed 2000 of 10000 by then; remaining 8000 at f=1.
  EXPECT_EQ(t, 12000u);
}

}  // namespace
}  // namespace pprophet::machine
