#include "emul/kismet.hpp"

#include <gtest/gtest.h>

#include "core/prophet.hpp"
#include "report/experiment.hpp"
#include "tree/builder.hpp"

namespace pprophet::emul {
namespace {

using tree::ProgramTree;
using tree::TreeBuilder;

TEST(Kismet, SerialProgramHasUnitParallelism) {
  TreeBuilder b;
  b.u(1'000);
  b.u(2'000);
  const ProgramTree t = b.finish();
  const KismetResult r = analyze_kismet(t);
  EXPECT_EQ(r.serial_cycles, 3'000u);
  EXPECT_EQ(r.critical_path, 3'000u);
  EXPECT_DOUBLE_EQ(r.self_parallelism(), 1.0);
  EXPECT_DOUBLE_EQ(r.bound(8), 1.0);
}

TEST(Kismet, BalancedLoopSpanIsOneIteration) {
  TreeBuilder b;
  b.begin_sec("s");
  b.begin_task("t").u(100).end_task().repeat_last(32);
  b.end_sec();
  const ProgramTree t = b.finish();
  const KismetResult r = analyze_kismet(t);
  EXPECT_EQ(r.serial_cycles, 3'200u);
  EXPECT_EQ(r.critical_path, 100u);
  EXPECT_DOUBLE_EQ(r.self_parallelism(), 32.0);
  EXPECT_DOUBLE_EQ(r.bound(8), 8.0);   // work-limited
  EXPECT_DOUBLE_EQ(r.bound(64), 32.0); // span-limited
}

TEST(Kismet, ImbalancedLoopSpanIsLongestIteration) {
  TreeBuilder b;
  b.begin_sec("s");
  b.begin_task("big").u(1'000).end_task();
  b.begin_task("small").u(100).end_task().repeat_last(10);
  b.end_sec();
  const ProgramTree t = b.finish();
  const KismetResult r = analyze_kismet(t);
  EXPECT_EQ(r.critical_path, 1'000u);
  EXPECT_DOUBLE_EQ(r.self_parallelism(), 2.0);
}

TEST(Kismet, LocksSerializeWithinASection) {
  TreeBuilder b;
  b.begin_sec("s");
  for (int i = 0; i < 8; ++i) b.begin_task("t").l(1, 500).end_task();
  b.end_sec();
  const ProgramTree t = b.finish();
  const KismetResult r = analyze_kismet(t);
  EXPECT_EQ(r.critical_path, 8u * 500u);  // one lock: fully serial
  EXPECT_DOUBLE_EQ(r.bound(8), 1.0);
}

TEST(Kismet, DistinctLocksDoNotCompound) {
  TreeBuilder b;
  b.begin_sec("s");
  b.begin_task("t").l(1, 500).end_task().repeat_last(4);
  b.begin_task("t").l(2, 500).end_task().repeat_last(4);
  b.end_sec();
  const ProgramTree t = b.finish();
  // Each lock serializes its own 2000 cycles; they can overlap each other.
  EXPECT_EQ(analyze_kismet(t).critical_path, 2'000u);
}

TEST(Kismet, NestedParallelismMultipliesSelfParallelism) {
  TreeBuilder b;
  b.begin_sec("outer");
  for (int i = 0; i < 4; ++i) {
    b.begin_task("ot");
    b.begin_sec("inner");
    b.begin_task("it").u(100).end_task().repeat_last(4);
    b.end_sec();
    b.end_task();
  }
  b.end_sec();
  const ProgramTree t = b.finish();
  const KismetResult r = analyze_kismet(t);
  EXPECT_EQ(r.serial_cycles, 1'600u);
  EXPECT_EQ(r.critical_path, 100u);  // all 16 leaves parallel
  EXPECT_DOUBLE_EQ(r.self_parallelism(), 16.0);
}

TEST(Kismet, IsAnUpperBoundOnGroundTruth) {
  // Kismet's defining property (and flaw): it never under-estimates, so it
  // cannot see overhead- or schedule-induced saturation.
  TreeBuilder b;
  for (int k = 0; k < 16; ++k) {
    b.begin_sec("inner");
    for (int i = 0; i < 8; ++i) b.begin_task("t").u(2'000).end_task();
    b.end_sec();
  }
  const ProgramTree t = b.finish();
  const KismetResult k = analyze_kismet(t);
  core::PredictOptions o = report::paper_options(core::Method::GroundTruth);
  for (const CoreCount n : {2u, 4u, 8u}) {
    const double real = core::predict(t, n, o).speedup;
    EXPECT_GE(k.bound(n) * 1.0001, real) << n;
  }
  // And with real overheads it is strictly optimistic at scale.
  EXPECT_GT(k.bound(8), core::predict(t, 8, o).speedup);
}

TEST(Kismet, EmptyTreeRejected) {
  EXPECT_THROW(analyze_kismet(tree::ProgramTree{}), std::invalid_argument);
}

TEST(Kismet, RepeatCountsExpand) {
  TreeBuilder b;
  b.begin_sec("s");
  b.begin_task("t").u(10).end_task().repeat_last(1000);
  b.end_sec();
  const KismetResult r = analyze_kismet(b.finish());
  EXPECT_EQ(r.serial_cycles, 10'000u);
  EXPECT_EQ(r.critical_path, 10u);
}

}  // namespace
}  // namespace pprophet::emul
