#include "emul/pipeline.hpp"

#include <gtest/gtest.h>

#include "tree/builder.hpp"

namespace pprophet::emul {
namespace {

using tree::ProgramTree;
using tree::TreeBuilder;

/// A pipeline of `items` items, each with the given stage lengths.
ProgramTree pipe_tree(std::size_t items, std::vector<Cycles> stages) {
  TreeBuilder b;
  b.begin_sec("pipe");
  b.begin_task("item");
  for (const Cycles s : stages) b.u(s);
  b.end_task();
  b.repeat_last(items);
  b.end_sec();
  return b.finish();
}

PipelineConfig cfg(CoreCount workers, Cycles handoff = 0) {
  PipelineConfig c;
  c.workers = workers;
  c.stage_handoff = handoff;
  return c;
}

TEST(Pipeline, SingleWorkerIsSerial) {
  const ProgramTree t = pipe_tree(10, {100, 200, 300});
  const PipelineResult r = emulate_pipeline(*t.root->child(0), cfg(1));
  EXPECT_EQ(r.serial_cycles, 10u * 600u);
  EXPECT_EQ(r.parallel_cycles, r.serial_cycles);
  EXPECT_DOUBLE_EQ(r.speedup(), 1.0);
}

TEST(Pipeline, BalancedStagesApproachStageCountSpeedup) {
  // 3 equal stages, 3 workers, many items: steady state processes one item
  // per stage-time; speedup → 3 as fill/drain amortizes.
  const ProgramTree t = pipe_tree(100, {100, 100, 100});
  const PipelineResult r = emulate_pipeline(*t.root->child(0), cfg(3));
  // makespan = fill (2×100) + 100 per item = 10200.
  EXPECT_EQ(r.parallel_cycles, 10'200u);
  EXPECT_NEAR(r.speedup(), 2.94, 0.01);
}

TEST(Pipeline, BottleneckStageBoundsThroughput) {
  // Stage 300 dominates: makespan ≈ items × 300; speedup ≤ total/bottleneck.
  const ProgramTree t = pipe_tree(100, {50, 300, 50});
  const PipelineResult r = emulate_pipeline(*t.root->child(0), cfg(3));
  EXPECT_EQ(r.bottleneck_cycles, 100u * 300u);
  EXPECT_GE(r.parallel_cycles, r.bottleneck_cycles);
  EXPECT_LE(r.speedup(), static_cast<double>(r.serial_cycles) /
                             static_cast<double>(r.bottleneck_cycles) + 0.01);
}

TEST(Pipeline, MoreWorkersThanStagesDoesNotHelp) {
  const ProgramTree t = pipe_tree(50, {100, 100});
  const Cycles two = emulate_pipeline(*t.root->child(0), cfg(2)).parallel_cycles;
  const Cycles eight =
      emulate_pipeline(*t.root->child(0), cfg(8)).parallel_cycles;
  EXPECT_EQ(two, eight);  // stages are the concurrency limit
}

TEST(Pipeline, StageFusionBalancesUnevenStages) {
  // 4 stages {100,100,100,300}, 2 workers. Balanced fusion puts {100,100,
  // 100} on one worker and {300} on the other: per-item 300/300, speedup→2.
  const ProgramTree t = pipe_tree(100, {100, 100, 100, 300});
  const PipelineResult r = emulate_pipeline(*t.root->child(0), cfg(2));
  EXPECT_NEAR(r.speedup(), 2.0, 0.05);
}

TEST(Pipeline, HandoffCostReducesSpeedup) {
  const ProgramTree t = pipe_tree(50, {100, 100, 100});
  const double free_speedup =
      emulate_pipeline(*t.root->child(0), cfg(3, 0)).speedup();
  const double costly =
      emulate_pipeline(*t.root->child(0), cfg(3, 50)).speedup();
  EXPECT_LT(costly, free_speedup);
}

TEST(Pipeline, HeterogeneousItemsStillOrdered) {
  // Items with alternating heavy/light middle stages: the wavefront must
  // respect item order; throughput equals the middle stage's total demand.
  TreeBuilder b;
  b.begin_sec("pipe");
  for (int i = 0; i < 20; ++i) {
    b.begin_task("item").u(10).u(i % 2 == 0 ? 200 : 50).u(10).end_task();
  }
  b.end_sec();
  const ProgramTree t = b.finish();
  const PipelineResult r = emulate_pipeline(*t.root->child(0), cfg(3));
  EXPECT_EQ(r.bottleneck_cycles, 10u * 200u + 10u * 50u);
  EXPECT_GE(r.parallel_cycles, r.bottleneck_cycles);
}

TEST(Pipeline, LockStagesCountAsStages) {
  TreeBuilder b;
  b.begin_sec("pipe");
  b.begin_task("item").u(100).l(1, 50).u(100).end_task().repeat_last(10);
  b.end_sec();
  const ProgramTree t = b.finish();
  const PipelineResult r = emulate_pipeline(*t.root->child(0), cfg(3));
  EXPECT_EQ(r.stages, 3u);
  EXPECT_GT(r.speedup(), 1.5);
}

TEST(Pipeline, CompressedRepeatsExpand) {
  const ProgramTree t = pipe_tree(64, {100, 100});
  const PipelineResult r = emulate_pipeline(*t.root->child(0), cfg(2));
  EXPECT_EQ(r.items, 64u);
}

TEST(Pipeline, RejectsBadInputs) {
  const ProgramTree t = pipe_tree(4, {100});
  EXPECT_THROW(emulate_pipeline(*t.root->child(0), cfg(0)),
               std::invalid_argument);
  EXPECT_THROW(emulate_pipeline(*t.root, cfg(2)), std::invalid_argument);

  // Ragged stage counts.
  TreeBuilder ragged;
  ragged.begin_sec("pipe");
  ragged.begin_task("a").u(10).u(10).end_task();
  ragged.begin_task("b").u(10).end_task();
  ragged.end_sec();
  const ProgramTree rt = ragged.finish();
  EXPECT_THROW(emulate_pipeline(*rt.root->child(0), cfg(2)),
               std::invalid_argument);

  // Nested sections are not pipelinable.
  TreeBuilder nested;
  nested.begin_sec("pipe");
  nested.begin_task("a");
  nested.begin_sec("inner");
  nested.begin_task("x").u(5).end_task();
  nested.end_sec();
  nested.end_task();
  nested.end_sec();
  const ProgramTree nt = nested.finish();
  EXPECT_THROW(emulate_pipeline(*nt.root->child(0), cfg(2)),
               std::invalid_argument);
}

TEST(Pipeline, EmptySectionIsTrivial) {
  tree::Node sec(tree::NodeKind::Sec, "empty");
  const PipelineResult r = emulate_pipeline(sec, cfg(4));
  EXPECT_EQ(r.items, 0u);
  EXPECT_EQ(r.parallel_cycles, 1u);
}

}  // namespace
}  // namespace pprophet::emul
