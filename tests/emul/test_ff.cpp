#include "emul/ff.hpp"

#include <gtest/gtest.h>

#include "emul/suitability.hpp"

#include "tree/builder.hpp"

namespace pprophet::emul {
namespace {

using runtime::OmpSchedule;
using tree::ProgramTree;
using tree::TreeBuilder;

FfConfig cfg(CoreCount threads, OmpSchedule sched, std::uint64_t chunk = 1) {
  FfConfig c;
  c.num_threads = threads;
  c.schedule = sched;
  c.chunk = chunk;
  c.overheads = runtime::OmpOverheads{0, 0, 0, 0, 0, 0, 0};
  return c;
}

ProgramTree figure5_tree() {
  TreeBuilder b;
  b.begin_sec("loop");
  b.begin_task("I0").u(150).l(1, 450).u(50).end_task();
  b.begin_task("I1").u(100).l(1, 300).u(200).end_task();
  b.begin_task("I2").u(150).l(1, 50).u(50).end_task();
  b.end_sec();
  return b.finish();
}

TEST(Ff, SerialBaseline) {
  const ProgramTree t = figure5_tree();
  const FfResult r = emulate_ff(t, cfg(1, OmpSchedule::StaticBlock));
  EXPECT_EQ(r.serial_cycles, 1500u);
  EXPECT_EQ(r.parallel_cycles, 1500u);
  EXPECT_DOUBLE_EQ(r.speedup(), 1.0);
}

// Paper Figure 5, all three schedule cases, on two virtual CPUs.
TEST(Ff, Figure5Static1) {
  const FfResult r = emulate_ff(figure5_tree(),
                                cfg(2, OmpSchedule::StaticCyclic));
  EXPECT_EQ(r.parallel_cycles, 1150u);
  EXPECT_NEAR(r.speedup(), 1.30, 0.01);
}

TEST(Ff, Figure5StaticBlock) {
  const FfResult r = emulate_ff(figure5_tree(),
                                cfg(2, OmpSchedule::StaticBlock));
  EXPECT_EQ(r.parallel_cycles, 1250u);
  EXPECT_NEAR(r.speedup(), 1.20, 0.01);
}

TEST(Ff, Figure5Dynamic1) {
  const FfResult r = emulate_ff(figure5_tree(), cfg(2, OmpSchedule::Dynamic));
  EXPECT_EQ(r.parallel_cycles, 950u);
  EXPECT_NEAR(r.speedup(), 1.58, 0.01);
}

// Paper Figure 7: the FF's non-preemptive round-robin nested mapping piles
// both long nested iterations onto the same CPU and predicts 1.5 where the
// real machine reaches 2.0.
TEST(Ff, Figure7NestedMispredictionIs1p5) {
  const Cycles k = 1000;
  TreeBuilder b;
  b.begin_sec("Loop1");
  b.begin_task("i0");
  b.begin_sec("LoopA");
  b.begin_task("a0").u(10 * k).end_task();
  b.begin_task("a1").u(5 * k).end_task();
  b.end_sec();
  b.end_task();
  b.begin_task("i1");
  b.begin_sec("LoopB");
  b.begin_task("b0").u(5 * k).end_task();
  b.begin_task("b1").u(10 * k).end_task();
  b.end_sec();
  b.end_task();
  b.end_sec();
  const ProgramTree t = b.finish();

  const FfResult r = emulate_ff(t, cfg(2, OmpSchedule::StaticCyclic));
  EXPECT_EQ(r.serial_cycles, 30 * k);
  EXPECT_EQ(r.parallel_cycles, 20 * k);
  EXPECT_NEAR(r.speedup(), 1.5, 0.001);
}

TEST(Ff, BalancedLoopScalesLinearly) {
  TreeBuilder b;
  b.begin_sec("s");
  b.begin_task("t").u(1000).end_task().repeat_last(48);
  b.end_sec();
  const ProgramTree t = b.finish();
  for (const CoreCount n : {2u, 4u, 6u, 12u}) {
    const FfResult r = emulate_ff(t, cfg(n, OmpSchedule::StaticCyclic));
    EXPECT_EQ(r.parallel_cycles, 48u * 1000u / n) << n;
  }
}

TEST(Ff, TriangularImbalanceFavorsCyclicOverBlock) {
  // Iteration i has work proportional to i (LUreduction-style).
  TreeBuilder b;
  b.begin_sec("s");
  for (int i = 1; i <= 32; ++i) {
    b.begin_task("t").u(static_cast<Cycles>(i) * 100).end_task();
  }
  b.end_sec();
  const ProgramTree t = b.finish();
  const Cycles cyclic =
      emulate_ff(t, cfg(4, OmpSchedule::StaticCyclic)).parallel_cycles;
  const Cycles block =
      emulate_ff(t, cfg(4, OmpSchedule::StaticBlock)).parallel_cycles;
  const Cycles dynamic =
      emulate_ff(t, cfg(4, OmpSchedule::Dynamic)).parallel_cycles;
  EXPECT_LT(cyclic, block);
  EXPECT_LE(dynamic, cyclic);
}

TEST(Ff, ForkAndDispatchOverheadsCharged) {
  TreeBuilder b;
  b.begin_sec("s");
  b.begin_task("t").u(100).end_task().repeat_last(4);
  b.end_sec();
  const ProgramTree t = b.finish();
  FfConfig c = cfg(4, OmpSchedule::StaticCyclic);
  c.overheads.fork_base = 1000;
  c.overheads.fork_per_thread = 100;
  c.overheads.join_barrier = 50;
  c.overheads.static_dispatch = 10;
  const FfResult r = emulate_ff(t, c);
  // fork (1000 + 3×100) + dispatch 10 + work 100 + barrier 50.
  EXPECT_EQ(r.parallel_cycles, 1300u + 10u + 100u + 50u);
}

TEST(Ff, LockOverheadsSurroundCriticalSections) {
  TreeBuilder b;
  b.begin_sec("s");
  b.begin_task("t").l(1, 100).end_task();
  b.end_sec();
  const ProgramTree t = b.finish();
  FfConfig c = cfg(1, OmpSchedule::StaticCyclic);
  c.overheads.lock_acquire = 30;
  c.overheads.lock_release = 20;
  EXPECT_EQ(emulate_ff(t, c).parallel_cycles, 150u);
}

TEST(Ff, FullLockSerializationMatchesTheory) {
  TreeBuilder b;
  b.begin_sec("s");
  for (int i = 0; i < 8; ++i) b.begin_task("t").l(1, 500).end_task();
  b.end_sec();
  const ProgramTree t = b.finish();
  const FfResult r = emulate_ff(t, cfg(8, OmpSchedule::StaticCyclic));
  EXPECT_EQ(r.parallel_cycles, 8u * 500u);
}

TEST(Ff, DistinctLocksDoNotSerialize) {
  TreeBuilder b;
  b.begin_sec("s");
  b.begin_task("t").l(1, 500).end_task();
  b.begin_task("t").l(2, 500).end_task();
  b.end_sec();
  const ProgramTree t = b.finish();
  EXPECT_EQ(emulate_ff(t, cfg(2, OmpSchedule::StaticCyclic)).parallel_cycles,
            500u);
}

TEST(Ff, BurdenFactorScalesNodeLengths) {
  TreeBuilder b;
  b.begin_sec("s");
  b.current()->set_burden(2, 1.5);
  b.begin_task("t").u(1000).end_task().repeat_last(2);
  b.end_sec();
  const ProgramTree t = b.finish();
  FfConfig c = cfg(2, OmpSchedule::StaticCyclic);
  c.apply_burden = true;
  EXPECT_EQ(emulate_ff(t, c).parallel_cycles, 1500u);
  c.apply_burden = false;
  EXPECT_EQ(emulate_ff(t, c).parallel_cycles, 1000u);
}

TEST(Ff, DynamicChunkGreaterThanOne) {
  TreeBuilder b;
  b.begin_sec("s");
  b.begin_task("t").u(100).end_task().repeat_last(8);
  b.end_sec();
  const ProgramTree t = b.finish();
  const FfResult r = emulate_ff(t, cfg(2, OmpSchedule::Dynamic, 2));
  EXPECT_EQ(r.parallel_cycles, 400u);  // 4 chunks of 2 across 2 cpus
}

TEST(Ff, NowaitNestedSectionOverlapsParent) {
  // Parent task: U(100), nowait-Sec{U(1000)}, U(100). The parent continues
  // past the nowait section; but the FF's nested round-robin maps the
  // single nested iteration onto the parent's own CPU (rank 0 → CPU 0), so
  // it only starts once the parent's remaining U(100) is done: 200 + 1000.
  // (Yet another instance of the fixed-mapping artifact of §IV-D.)
  TreeBuilder b;
  b.begin_sec("outer");
  b.begin_task("p");
  b.u(100);
  b.begin_sec("inner");
  b.begin_task("n").u(1000).end_task();
  b.end_sec(false);  // nowait
  b.u(100);
  b.end_task();
  b.end_sec();
  const ProgramTree t = b.finish();
  const FfResult r = emulate_ff(t, cfg(2, OmpSchedule::StaticCyclic));
  EXPECT_EQ(r.parallel_cycles, 1200u);
  // Still better than full serialization of 100+1000+100 in sequence plus
  // an implicit wait — the parent's trailing U did overlap nothing, but
  // nowait kept the parent from blocking at the section end.
}

TEST(Ff, SerialTopLevelNodesPassThrough) {
  TreeBuilder b;
  b.u(500);
  b.begin_sec("s");
  b.begin_task("t").u(100).end_task().repeat_last(2);
  b.end_sec();
  b.u(250);
  const ProgramTree t = b.finish();
  const FfResult r = emulate_ff(t, cfg(2, OmpSchedule::StaticCyclic));
  EXPECT_EQ(r.parallel_cycles, 500u + 100u + 250u);
  EXPECT_EQ(r.serial_cycles, 950u);
}

TEST(Ff, RejectsBadInputs) {
  const ProgramTree t = figure5_tree();
  EXPECT_THROW(emulate_ff(t, cfg(0, OmpSchedule::StaticBlock)),
               std::invalid_argument);
  EXPECT_THROW(emulate_ff(ProgramTree{}, cfg(2, OmpSchedule::StaticBlock)),
               std::invalid_argument);
  EXPECT_THROW(
      emulate_ff_section(*t.root->child(0)->child(0),
                         cfg(2, OmpSchedule::StaticBlock)),
      std::invalid_argument);
}

TEST(Suitability, IgnoresSchedulePolicy) {
  // Same prediction regardless of what the tree would prefer — the paper's
  // observation that Suitability cannot differentiate schedules.
  const ProgramTree t = figure5_tree();
  SuitabilityConfig c;
  c.num_threads = 2;
  const FfResult r = emulate_suitability(t, c);
  EXPECT_GT(r.parallel_cycles, 0u);
  // Heavier constant overheads than the calibrated FF.
  const FfResult ff = emulate_ff(t, cfg(2, OmpSchedule::Dynamic));
  EXPECT_GT(r.parallel_cycles, ff.parallel_cycles);
}

TEST(Suitability, OverestimatesInnerLoopOverhead) {
  // Frequent small inner parallel loops (LU-OMP pattern): Suitability's
  // coarse per-fork cost makes it predict much worse speedups than FF.
  TreeBuilder b;
  for (int k = 0; k < 20; ++k) {
    b.begin_sec("inner");
    for (int i = 0; i < 8; ++i) b.begin_task("t").u(2000).end_task();
    b.end_sec();
  }
  const ProgramTree t = b.finish();
  SuitabilityConfig sc;
  sc.num_threads = 8;
  const double suit = emulate_suitability(t, sc).speedup();
  FfConfig fc = cfg(8, OmpSchedule::StaticCyclic);
  fc.overheads.fork_base = 2000;
  fc.overheads.fork_per_thread = 500;
  const double ff = emulate_ff(t, fc).speedup();
  EXPECT_LT(suit, 0.75 * ff);
}

}  // namespace
}  // namespace pprophet::emul
