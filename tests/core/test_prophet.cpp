#include "core/prophet.hpp"

#include <gtest/gtest.h>

#include "memmodel/calibration.hpp"
#include "tree/builder.hpp"

namespace pprophet::core {
namespace {

using tree::ProgramTree;
using tree::TreeBuilder;

PredictOptions base_options(Method m) {
  PredictOptions o;
  o.method = m;
  o.machine.cores = 12;
  o.machine.context_switch = 0;
  o.omp_overheads = runtime::OmpOverheads{0, 0, 0, 0, 0, 0, 0};
  o.cilk_overheads = runtime::CilkOverheads{0, 0, 0, 0, 0, 0};
  o.synth_overheads = runtime::SynthOverheads{0, 0};
  return o;
}

ProgramTree balanced_loop(std::uint64_t iters, Cycles len) {
  TreeBuilder b;
  b.begin_sec("loop");
  b.begin_task("t").u(len).end_task().repeat_last(iters);
  b.end_sec();
  return b.finish();
}

TEST(Prophet, AllMethodsAgreeOnBalancedLoop) {
  const ProgramTree t = balanced_loop(48, 1000);
  for (const Method m : {Method::FastForward, Method::Synthesizer,
                         Method::GroundTruth}) {
    const SpeedupEstimate e = predict(t, 4, base_options(m));
    EXPECT_NEAR(e.speedup, 4.0, 0.05) << to_string(m);
  }
}

TEST(Prophet, CurveIsMonotoneForScalableLoop) {
  const ProgramTree t = balanced_loop(480, 1000);
  const CoreCount counts[] = {2, 4, 6, 8, 10, 12};
  const auto curve = predict_curve(t, counts, base_options(Method::Synthesizer));
  ASSERT_EQ(curve.size(), 6u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].speedup, curve[i - 1].speedup);
  }
  EXPECT_NEAR(curve.back().speedup, 12.0, 0.2);
}

TEST(Prophet, SerialCyclesPreferMeasuredRootLength) {
  ProgramTree t = balanced_loop(4, 100);
  EXPECT_EQ(serial_cycles_of(t), 400u);
  t.root->set_length(1000);  // profiler-measured (includes glue)
  EXPECT_EQ(serial_cycles_of(t), 1000u);
}

// End-to-end Figure 7: FF mispredicts 1.5; the synthesizer and the ground
// truth both land near 2.0 — the paper's core motivating discrepancy.
TEST(Prophet, Figure7FfVsSynthesizer) {
  const Cycles k = 10'000;
  TreeBuilder b;
  b.begin_sec("Loop1");
  b.begin_task("i0");
  b.begin_sec("LoopA");
  b.begin_task("a0").u(10 * k).end_task();
  b.begin_task("a1").u(5 * k).end_task();
  b.end_sec();
  b.end_task();
  b.begin_task("i1");
  b.begin_sec("LoopB");
  b.begin_task("b0").u(5 * k).end_task();
  b.begin_task("b1").u(10 * k).end_task();
  b.end_sec();
  b.end_task();
  b.end_sec();
  const ProgramTree t = b.finish();

  PredictOptions o = base_options(Method::FastForward);
  o.machine.cores = 2;
  o.machine.quantum = k / 10;
  const double ff = predict(t, 2, o).speedup;
  o.method = Method::Synthesizer;
  const double syn = predict(t, 2, o).speedup;
  o.method = Method::GroundTruth;
  const double real = predict(t, 2, o).speedup;

  EXPECT_NEAR(ff, 1.5, 0.01);
  EXPECT_GT(syn, 1.85);
  EXPECT_GT(real, 1.85);
  EXPECT_NEAR(syn, real, 0.15);
}

TEST(Prophet, SynthesizerWithoutMemoryModelIgnoresBurdens) {
  ProgramTree t = balanced_loop(8, 1000);
  t.root->child(0)->set_burden(4, 2.0);  // pretend the model ran
  PredictOptions o = base_options(Method::Synthesizer);
  o.memory_model = false;
  const double plain = predict(t, 4, o).speedup;
  o.memory_model = true;
  const double burdened = predict(t, 4, o).speedup;
  EXPECT_NEAR(plain, 4.0, 0.05);
  EXPECT_NEAR(burdened, 2.0, 0.05);  // every node ×2
}

TEST(Prophet, GroundTruthSeesMemoryContention) {
  TreeBuilder b;
  b.begin_sec("s");
  tree::SectionCounters c;
  c.instructions = 32'000;
  c.cycles = 32'000;
  c.llc_misses = 160;  // fully memory bound at ω=200
  b.counters(c);
  b.begin_task("t").u(1000).end_task().repeat_last(32);
  b.end_sec();
  const ProgramTree t = b.finish();

  PredictOptions o = base_options(Method::GroundTruth);
  o.machine.bandwidth.saturation_mbps = 500.0;  // near the solo traffic
  const double s2 = predict(t, 2, o).speedup;
  const double s8 = predict(t, 8, o).speedup;
  EXPECT_LT(s8, 4.0);          // saturated well below linear
  EXPECT_LT(s8 / s2, 8.0 / 2.0);  // diminishing returns
}

TEST(Prophet, CilkParadigmHandlesRecursion) {
  // Recursive tree that nested-OpenMP handles badly but Cilk handles well.
  TreeBuilder b;
  std::function<void(int)> rec = [&](int depth) {
    if (depth == 0) {
      b.u(1000);
      return;
    }
    b.begin_sec("rec");
    for (int i = 0; i < 2; ++i) {
      b.begin_task("half");
      rec(depth - 1);
      b.end_task();
    }
    b.end_sec();
    b.u(200);
  };
  b.begin_sec("top");
  b.begin_task("root");
  rec(5);
  b.end_task();
  b.end_sec();
  const ProgramTree t = b.finish();

  PredictOptions o = base_options(Method::GroundTruth);
  o.paradigm = Paradigm::CilkPlus;
  o.machine.cores = 4;
  const double cilk = predict(t, 4, o).speedup;
  EXPECT_GT(cilk, 2.4);
}

TEST(Prophet, SuitabilityDeviatesOnInnerLoops) {
  TreeBuilder b;
  for (int k = 0; k < 10; ++k) {
    b.begin_sec("inner");
    for (int i = 0; i < 8; ++i) b.begin_task("t").u(3000).end_task();
    b.end_sec();
  }
  const ProgramTree t = b.finish();
  const double real =
      predict(t, 8, base_options(Method::GroundTruth)).speedup;
  const double suit =
      predict(t, 8, base_options(Method::Suitability)).speedup;
  EXPECT_LT(suit, 0.8 * real);
}

TEST(Prophet, RejectsBadInputs) {
  const ProgramTree t = balanced_loop(4, 100);
  EXPECT_THROW(predict(t, 0, base_options(Method::FastForward)),
               std::invalid_argument);
  EXPECT_THROW(predict(ProgramTree{}, 2, base_options(Method::FastForward)),
               std::invalid_argument);
}

TEST(Prophet, MethodNamesForReports) {
  EXPECT_STREQ(to_string(Method::FastForward), "FF");
  EXPECT_STREQ(to_string(Method::Synthesizer), "SYN");
  EXPECT_STREQ(to_string(Method::Suitability), "Suit");
  EXPECT_STREQ(to_string(Method::GroundTruth), "Real");
  EXPECT_STREQ(to_string(Paradigm::CilkPlus), "CilkPlus");
}

}  // namespace
}  // namespace pprophet::core
