// EngineOptions is the single source of engine configuration: both
// PredictOptions and ProphetConfig embed it, and the historical flat
// spelling (`o.schedule`) must alias the explicit spelling
// (`o.engine().schedule`) exactly — same field, both structs.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/prophet.hpp"
#include "report/experiment.hpp"
#include "tree/builder.hpp"

namespace pprophet::core {
namespace {

tree::ProgramTree small_tree() {
  tree::TreeBuilder b;
  b.begin_sec("s");
  for (int t = 0; t < 4; ++t) {
    b.begin_task("t");
    b.u(5'000);
    b.end_task();
  }
  b.end_sec();
  return b.finish();
}

TEST(EngineOptions, FlatAndEngineSpellingsAliasOneField) {
  PredictOptions o;
  o.schedule = runtime::OmpSchedule::Dynamic;
  o.chunk = 7;
  o.memory_model = true;
  o.machine.cores = 24;
  EXPECT_EQ(o.engine().schedule, runtime::OmpSchedule::Dynamic);
  EXPECT_EQ(o.engine().chunk, 7u);
  EXPECT_TRUE(o.engine().memory_model);
  EXPECT_EQ(o.engine().machine.cores, 24u);

  // Writes through the explicit spelling land on the flat members too.
  o.engine().schedule = runtime::OmpSchedule::Guided;
  o.engine().chunk = 2;
  o.engine().omp_overheads.fork_base = 123;
  EXPECT_EQ(o.schedule, runtime::OmpSchedule::Guided);
  EXPECT_EQ(o.chunk, 2u);
  EXPECT_EQ(o.omp_overheads.fork_base, 123u);
}

TEST(EngineOptions, ProphetConfigSharesTheSameBase) {
  ProphetConfig c;
  // ProphetConfig defaults: simulated Westmere with the memory model on.
  EXPECT_TRUE(c.memory_model);
  EXPECT_TRUE(c.engine().memory_model);
  c.engine().schedule = runtime::OmpSchedule::StaticBlock;
  EXPECT_EQ(c.schedule, runtime::OmpSchedule::StaticBlock);

  // The whole engine block copies as one unit between the two structs.
  PredictOptions o;
  o.engine() = c.engine();
  EXPECT_EQ(o.schedule, runtime::OmpSchedule::StaticBlock);
  EXPECT_TRUE(o.memory_model);
  EXPECT_EQ(o.machine.cores, c.machine.cores);
}

TEST(EngineOptions, BothSpellingsDriveIdenticalPredictions) {
  const tree::ProgramTree t = small_tree();
  PredictOptions flat = report::paper_options(Method::FastForward);
  flat.schedule = runtime::OmpSchedule::Dynamic;
  flat.chunk = 2;

  PredictOptions explicit_spelling = report::paper_options(Method::FastForward);
  explicit_spelling.engine().schedule = runtime::OmpSchedule::Dynamic;
  explicit_spelling.engine().chunk = 2;

  const SpeedupEstimate a = predict(t, 4, flat);
  const SpeedupEstimate b = predict(t, 4, explicit_spelling);
  EXPECT_EQ(a.parallel_cycles, b.parallel_cycles);
  EXPECT_EQ(a.serial_cycles, b.serial_cycles);
  EXPECT_EQ(a.speedup, b.speedup);
}

}  // namespace
}  // namespace pprophet::core
