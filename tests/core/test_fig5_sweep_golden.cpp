// Golden regression for the paper-shaped sweep (extends the
// test_figure4_golden.cpp pattern): FF speedups of the Figure 5 worked
// example — three unequal iterations and one lock — at t ∈ {2,4,8} under
// all three OpenMP schedules, batched through the sweep engine with ε = 0
// overheads. The t=2 row is the paper's published 1150/1250/950 cycles
// (speedups 1.30/1.20/1.58); the wider grid is pinned so emulator edits
// cannot silently drift any cell. All arithmetic is integer emulation, so
// the values are exact on every platform.
#include <gtest/gtest.h>

#include "core/sweep.hpp"
#include "tree/builder.hpp"

namespace pprophet::core {
namespace {

tree::ProgramTree figure5_tree() {
  tree::TreeBuilder b;
  b.begin_sec("loop");
  b.begin_task("I0").u(150).l(1, 450).u(50).end_task();
  b.begin_task("I1").u(100).l(1, 300).u(200).end_task();
  b.begin_task("I2").u(150).l(1, 50).u(50).end_task();
  b.end_sec();
  return b.finish();
}

struct GoldenCell {
  runtime::OmpSchedule schedule;
  CoreCount threads;
  Cycles parallel_cycles;  // serial length is 1500
};

// Beyond two threads every schedule converges to the 950-cycle critical
// path (I0's 650 cycles behind the 450-cycle lock hold of the longest
// arrival order) — three iterations cannot use a fourth CPU.
constexpr GoldenCell kGolden[] = {
    {runtime::OmpSchedule::StaticCyclic, 2, 1150},
    {runtime::OmpSchedule::StaticCyclic, 4, 950},
    {runtime::OmpSchedule::StaticCyclic, 8, 950},
    {runtime::OmpSchedule::StaticBlock, 2, 1250},
    {runtime::OmpSchedule::StaticBlock, 4, 950},
    {runtime::OmpSchedule::StaticBlock, 8, 950},
    {runtime::OmpSchedule::Dynamic, 2, 950},
    {runtime::OmpSchedule::Dynamic, 4, 950},
    {runtime::OmpSchedule::Dynamic, 8, 950},
};

TEST(Figure5SweepGolden, FfScheduleGridMatchesThePinnedValues) {
  const tree::ProgramTree t = figure5_tree();

  SweepGrid grid;
  grid.methods = {Method::FastForward};
  grid.schedules = {runtime::OmpSchedule::StaticCyclic,
                    runtime::OmpSchedule::StaticBlock,
                    runtime::OmpSchedule::Dynamic};
  grid.thread_counts = {2, 4, 8};
  grid.base.omp_overheads = runtime::OmpOverheads{0, 0, 0, 0, 0, 0, 0};

  const SweepResult res = sweep(t, grid, {});
  ASSERT_EQ(res.cells.size(), std::size(kGolden));
  for (std::size_t i = 0; i < std::size(kGolden); ++i) {
    const GoldenCell& g = kGolden[i];
    const SweepCell& c = res.cells[i];
    EXPECT_EQ(c.point.schedule, g.schedule) << "cell " << i;
    EXPECT_EQ(c.point.threads, g.threads) << "cell " << i;
    EXPECT_EQ(c.estimate.serial_cycles, 1500u) << "cell " << i;
    EXPECT_EQ(c.estimate.parallel_cycles, g.parallel_cycles)
        << "cell " << i << ": "
        << runtime::to_string(g.schedule) << " t=" << g.threads;
    EXPECT_DOUBLE_EQ(c.estimate.speedup,
                     1500.0 / static_cast<double>(g.parallel_cycles));
  }
}

TEST(Figure5SweepGolden, PaperRowSpeedupsRound) {
  // The paper quotes ≈1.30 / 1.20 / 1.58 for the two-core row.
  const tree::ProgramTree t = figure5_tree();
  SweepGrid grid;
  grid.methods = {Method::FastForward};
  grid.schedules = {runtime::OmpSchedule::StaticCyclic,
                    runtime::OmpSchedule::StaticBlock,
                    runtime::OmpSchedule::Dynamic};
  grid.thread_counts = {2};
  grid.base.omp_overheads = runtime::OmpOverheads{0, 0, 0, 0, 0, 0, 0};
  const SweepResult res = sweep(t, grid, {});
  ASSERT_EQ(res.cells.size(), 3u);
  EXPECT_NEAR(res.cells[0].estimate.speedup, 1.30, 0.005);
  EXPECT_NEAR(res.cells[1].estimate.speedup, 1.20, 0.005);
  EXPECT_NEAR(res.cells[2].estimate.speedup, 1.58, 0.005);
}

}  // namespace
}  // namespace pprophet::core
