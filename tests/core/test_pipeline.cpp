#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "annotate/annotations.hpp"
#include "tree/validate.hpp"

namespace pprophet::core {
namespace {

// An annotated serial program for the facade: a balanced loop over an
// instrumented array with a small critical section.
void sample_program(vcpu::VirtualCpu& cpu) {
  vcpu::InstrumentedArray<double> data(cpu, 2048, 1.0);
  PAR_SEC_BEGIN("loop");
  for (int i = 0; i < 32; ++i) {
    PAR_TASK_BEGIN("chunk");
    // Many passes over the chunk: cold misses amortize away, keeping the
    // section compute-bound (MPI below the burden-model floor).
    for (int pass = 0; pass < 32; ++pass) {
      for (std::size_t j = 0; j < 64; ++j) {
        data.update(static_cast<std::size_t>(i) * 64 + j,
                    [](double v) { return v * 1.01; });
        cpu.compute(6);
      }
    }
    LOCK_BEGIN(1);
    cpu.compute(40);
    LOCK_END(1);
    PAR_TASK_END();
  }
  PAR_SEC_END(true);
}

ProphetConfig quick_config() {
  ProphetConfig c;
  c.thread_counts = {2, 4, 8};
  return c;
}

TEST(ProphetPipeline, ProfileProducesCompressedValidTree) {
  const Prophet prophet(quick_config());
  const ProfiledProgram p = prophet.profile(sample_program);
  EXPECT_TRUE(tree::is_valid(p.tree));
  // 32 near-identical iterations: online-less batch compression merges.
  EXPECT_LT(p.compression.nodes_after, p.compression.nodes_before);
  const tree::Node* sec = p.tree.root->child(0);
  EXPECT_EQ(sec->logical_child_count(), 32u);
  ASSERT_NE(sec->counters(), nullptr);
  EXPECT_GT(sec->counters()->instructions, 0u);
}

TEST(ProphetPipeline, AnalyzeProducesCurvesAndAdvice) {
  const Prophet prophet(quick_config());
  const ProphetReport r = prophet.run(sample_program);
  ASSERT_EQ(r.ff.size(), 3u);
  ASSERT_EQ(r.synth.size(), 3u);
  for (std::size_t i = 0; i < r.synth.size(); ++i) {
    EXPECT_GT(r.synth[i].speedup, 1.0);
    EXPECT_LE(r.synth[i].speedup, 8.1);
    // Flat loop: both emulators agree within the FF envelope.
    EXPECT_NEAR(r.ff[i].speedup, r.synth[i].speedup,
                0.25 * r.synth[i].speedup);
  }
  EXPECT_GE(r.recommendation.best.speedup, r.synth.back().speedup * 0.9);
  EXPECT_GE(r.max_burden, 1.0);
}

TEST(ProphetPipeline, MemoryModelToggleChangesNothingForComputeBound) {
  ProphetConfig with = quick_config();
  with.memory_model = true;
  ProphetConfig without = quick_config();
  without.memory_model = false;
  const double a = Prophet(with).run(sample_program).synth.back().speedup;
  const double b = Prophet(without).run(sample_program).synth.back().speedup;
  EXPECT_NEAR(a, b, 1e-9);  // tiny working set: burden is 1 either way
}

TEST(ProphetPipeline, ReportPrintsEveryPiece) {
  const ProphetReport r = Prophet(quick_config()).run(sample_program);
  std::ostringstream os;
  r.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("FF"), std::string::npos);
  EXPECT_NE(s.find("SYN"), std::string::npos);
  EXPECT_NE(s.find("8-core"), std::string::npos);
  EXPECT_NE(s.find("recommendation:"), std::string::npos);
  EXPECT_NE(s.find("max burden"), std::string::npos);
}

TEST(ProphetPipeline, DeterministicEndToEnd) {
  const Prophet prophet(quick_config());
  const ProphetReport a = prophet.run(sample_program);
  const ProphetReport b = prophet.run(sample_program);
  for (std::size_t i = 0; i < a.synth.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.synth[i].speedup, b.synth[i].speedup);
    EXPECT_DOUBLE_EQ(a.ff[i].speedup, b.ff[i].speedup);
  }
}

TEST(ProphetPipeline, ZeroCoreConfigGetsDefaulted) {
  ProphetConfig c;
  c.machine.cores = 0;
  EXPECT_EQ(Prophet(c).config().machine.cores, 12u);
}

TEST(ProphetPipeline, CilkParadigmWorksThroughTheFacade) {
  ProphetConfig c = quick_config();
  c.paradigm = Paradigm::CilkPlus;
  const ProphetReport r = Prophet(c).run(sample_program);
  EXPECT_GT(r.synth.back().speedup, 2.0);
}

TEST(ProphetPipeline, CompressOptionsAreHonoured) {
  ProphetConfig c = quick_config();
  c.compress.tolerance = 0.0;  // exact merges only
  const ProfiledProgram p = Prophet(c).profile(sample_program);
  // Iterations of the sample program differ slightly (cold misses), so the
  // zero-tolerance pass keeps more nodes than the default 5% pass.
  const ProfiledProgram loose = Prophet(quick_config()).profile(sample_program);
  EXPECT_GE(p.compression.nodes_after, loose.compression.nodes_after);
}

}  // namespace
}  // namespace pprophet::core
