// The causal what-if advisor (core/advise.hpp): critical-path profiles,
// the configuration search that recommend() now wraps (field-for-field
// equivalence on the Figure-5 worked example), the economical tie-break
// rule, action soundness on the golden tree, and the memo accounting that
// makes the edit search cheap.
#include "core/advise.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/prophet.hpp"
#include "tree/builder.hpp"
#include "tree/edit.hpp"

namespace pprophet::core {
namespace {

tree::ProgramTree figure5_tree() {
  tree::TreeBuilder b;
  b.begin_sec("loop");
  b.begin_task("I0").u(150).l(1, 450).u(50).end_task();
  b.begin_task("I1").u(100).l(1, 300).u(200).end_task();
  b.begin_task("I2").u(150).l(1, 50).u(50).end_task();
  b.end_sec();
  return b.finish();
}

PredictOptions zero_overheads() {
  PredictOptions o;
  o.omp_overheads = runtime::OmpOverheads{0, 0, 0, 0, 0, 0, 0};
  return o;
}

/// What the deprecated surface promises: the same numbers predict() gives
/// for that configuration, from scratch.
double fresh_speedup(const tree::ProgramTree& t, const Candidate& c,
                     const PredictOptions& base) {
  PredictOptions o = base;
  o.method = Method::Synthesizer;
  o.paradigm = c.paradigm;
  o.schedule = c.schedule;
  o.chunk = c.chunk;
  return predict(t, c.threads, o).speedup;
}

void expect_candidates_equal(const Candidate& a, const Candidate& b) {
  EXPECT_EQ(a.paradigm, b.paradigm);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.chunk, b.chunk);
  EXPECT_EQ(a.threads, b.threads);
  EXPECT_DOUBLE_EQ(a.speedup, b.speedup);
  EXPECT_DOUBLE_EQ(a.efficiency, b.efficiency);
}

TEST(CriticalPathProfile, ComputesWorkSpanAndLockCeilings) {
  tree::TreeBuilder b;
  b.u(3'000);
  b.begin_sec("wide");
  b.begin_task("t").u(1'000).end_task().repeat_last(4);
  b.end_sec();
  b.begin_sec("locked");
  b.begin_task("t").l(7, 2'000).end_task().repeat_last(2);
  b.end_sec();
  const tree::ProgramTree t = b.finish();

  const CriticalPathProfile p = critical_path_profile(t);
  EXPECT_EQ(p.serial_cycles, 11'000u);
  EXPECT_EQ(p.top_u_cycles, 3'000u);
  EXPECT_DOUBLE_EQ(p.serial_share, 3.0 / 11.0);
  ASSERT_EQ(p.sections.size(), 2u);

  const SectionProfile& wide = p.sections[0];
  EXPECT_EQ(wide.name, "wide");
  EXPECT_EQ(wide.tasks, 4u);
  EXPECT_EQ(wide.work, 4'000u);
  EXPECT_EQ(wide.span, 1'000u);  // longest single task
  EXPECT_DOUBLE_EQ(wide.parallelism, 4.0);
  EXPECT_DOUBLE_EQ(wide.work_share, 4.0 / 11.0);
  EXPECT_TRUE(wide.locks.empty());

  const SectionProfile& locked = p.sections[1];
  EXPECT_EQ(locked.work, 4'000u);
  ASSERT_EQ(locked.locks.size(), 1u);
  const LockProfile& lock = locked.locks[0];
  EXPECT_EQ(lock.lock, 7u);
  EXPECT_EQ(lock.held_cycles, 4'000u);  // 2 repeats x 2000 cycles
  EXPECT_DOUBLE_EQ(lock.work_share, 1.0);
  EXPECT_DOUBLE_EQ(lock.cap_speedup, 1.0);
  EXPECT_EQ(lock.cap_threads, 1u);
  // The busiest lock is the span: the section cannot scale at all.
  EXPECT_EQ(locked.span, 4'000u);
  EXPECT_DOUBLE_EQ(locked.parallelism, 1.0);
}

TEST(Advise, RecommendAdapterIsFieldForFieldEquivalentOnFigure5) {
  const tree::ProgramTree t = figure5_tree();

  RecommendOptions ro;
  ro.base = zero_overheads();
  ro.thread_counts = {2, 4, 8};
  const Recommendation rec = recommend(t, ro);

  AdviseOptions ao;
  ao.base = ro.base;
  static_cast<GridSpec&>(ao.grid) = static_cast<const GridSpec&>(ro);
  ao.efficiency_knee = ro.efficiency_knee;
  const Advice adv = advise_configurations(t, ao);
  const Recommendation view = to_recommendation(adv);

  ASSERT_EQ(rec.sweep.size(), view.sweep.size());
  for (std::size_t i = 0; i < rec.sweep.size(); ++i) {
    expect_candidates_equal(rec.sweep[i], view.sweep[i]);
  }
  expect_candidates_equal(rec.best, view.best);
  expect_candidates_equal(rec.economical, view.economical);

  // OpenMP enumerates every schedule; Cilk collapses to one entry per
  // thread count (its scheduler is not configurable).
  EXPECT_EQ(rec.sweep.size(), (4u + 1u) * 3u);
  // Sorted by descending speedup, best at the front.
  EXPECT_TRUE(std::is_sorted(
      rec.sweep.begin(), rec.sweep.end(),
      [](const Candidate& a, const Candidate& b) { return a.speedup > b.speedup; }));
  expect_candidates_equal(rec.best, rec.sweep.front());

  // Each candidate is exactly what predict() says for that configuration —
  // the memoized advisor path must not change a single value. The chunk
  // dimension stays inherited from the base options.
  for (const Candidate& c : rec.sweep) {
    EXPECT_EQ(c.chunk, ro.base.chunk);
    EXPECT_DOUBLE_EQ(c.speedup, fresh_speedup(t, c, ro.base));
    EXPECT_DOUBLE_EQ(c.efficiency, c.speedup / c.threads);
  }
}

TEST(Advise, EconomicalTieBreakPrefersFewestThreadsThenStaticBlock) {
  // One single-task section: no configuration parallelizes anything, so
  // every grid point ties at speedup 1.0 and the knee covers them all.
  // The deterministic tie-break must then pick the humblest config —
  // fewest threads, StaticBlock — not whatever sorted first.
  tree::TreeBuilder b;
  b.begin_sec("serial");
  b.begin_task("t").u(50'000).end_task();
  b.end_sec();
  const tree::ProgramTree t = b.finish();

  RecommendOptions ro;
  ro.base = zero_overheads();
  ro.thread_counts = {2, 4, 8};
  const Recommendation rec = recommend(t, ro);

  EXPECT_DOUBLE_EQ(rec.best.speedup, rec.economical.speedup);
  EXPECT_EQ(rec.economical.threads, 2u);
  EXPECT_EQ(rec.economical.schedule, runtime::OmpSchedule::StaticBlock);
  EXPECT_EQ(rec.economical.paradigm, Paradigm::OpenMP);
}

TEST(Advise, TargetThreadsDefaultsToLargestGridEntry) {
  const tree::ProgramTree t = figure5_tree();
  AdviseOptions ao;
  ao.base = zero_overheads();
  ao.grid.thread_counts = {2, 8, 4};
  const Advice adv = advise(t, ao);
  EXPECT_EQ(adv.target_threads, 8u);
  EXPECT_EQ(adv.baseline.threads, 8u);
  EXPECT_DOUBLE_EQ(adv.baseline.speedup,
                   fresh_speedup(t, adv.baseline, ao.base));

  AdviseOptions explicit_target = ao;
  explicit_target.target_threads = 4;
  const Advice adv4 = advise(t, explicit_target);
  EXPECT_EQ(adv4.target_threads, 4u);
  EXPECT_EQ(adv4.baseline.threads, 4u);
}

TEST(Advise, TopActionsAreSoundOnTheFigure5Golden) {
  const tree::ProgramTree t = figure5_tree();
  AdviseOptions ao;
  ao.base = zero_overheads();
  ao.grid.thread_counts = {2, 4, 8};
  const Advice adv = advise(t, ao);
  ASSERT_FALSE(adv.actions.empty());

  // Soundness: re-apply the promised edit to the source tree, re-predict
  // from scratch, and the advertised speedup_after must reproduce.
  std::size_t checked = 0;
  for (const Action& a : adv.actions) {
    if (checked == 3) break;
    if (a.kind == ActionKind::ConvertConfig) continue;
    tree::ProgramTree copy{t.root->clone()};
    tree::apply_edit(copy, a.edit);
    PredictOptions o = ao.base;
    o.method = Method::Synthesizer;
    const double fresh = predict(copy, adv.target_threads, o).speedup;
    EXPECT_NEAR(a.speedup_after, fresh, 0.01 * fresh) << a.describe();
    EXPECT_DOUBLE_EQ(a.speedup_before, adv.baseline.speedup);
    ++checked;
  }
  EXPECT_GT(checked, 0u);

  // Ranked by what they buy, and every record renders.
  EXPECT_TRUE(std::is_sorted(
      adv.actions.begin(), adv.actions.end(),
      [](const Action& a, const Action& b) {
        return a.speedup_after > b.speedup_after;
      }));
  for (const Action& a : adv.actions) {
    EXPECT_FALSE(a.describe().empty());
  }
  EXPECT_LE(adv.actions.size(), ao.max_actions);
  const auto converts = std::count_if(
      adv.actions.begin(), adv.actions.end(),
      [](const Action& a) { return a.kind == ActionKind::ConvertConfig; });
  EXPECT_LE(static_cast<std::size_t>(converts), ao.max_config_actions);
}

TEST(Advise, EditSearchSharesTheMemoAcrossEdits) {
  // Two sections: every edit salts exactly one section's digest, so the
  // other section keeps its key and every re-pricing after the first must
  // hit the memo instead of re-emulating it.
  tree::TreeBuilder b;
  b.begin_sec("loop");
  b.begin_task("I0").u(150).l(1, 450).u(50).end_task();
  b.begin_task("I1").u(100).l(1, 300).u(200).end_task();
  b.begin_task("I2").u(150).l(1, 50).u(50).end_task();
  b.end_sec();
  b.begin_sec("extra");
  b.begin_task("t").u(1'000).end_task().repeat_last(4);
  b.end_sec();
  const tree::ProgramTree t = b.finish();

  AdviseOptions ao;
  ao.base = zero_overheads();
  ao.grid.thread_counts = {2, 4, 8};
  const Advice adv = advise(t, ao);
  ASSERT_FALSE(adv.actions.empty());
  EXPECT_GT(adv.stats.cache_hits, 0u);
  EXPECT_LT(adv.stats.section_evals, adv.stats.section_lookups);
}

TEST(Advise, EmptySweepDimensionThrows) {
  const tree::ProgramTree t = figure5_tree();
  AdviseOptions ao;
  ao.grid.thread_counts.clear();
  EXPECT_THROW(advise_configurations(t, ao), std::invalid_argument);
  AdviseOptions no_schedules;
  no_schedules.grid.schedules.clear();
  EXPECT_THROW(advise(t, no_schedules), std::invalid_argument);
}

TEST(GridSpec, SharedDefaultsAndConsumerShims) {
  const GridSpec g;
  EXPECT_EQ(g.thread_counts, (std::vector<CoreCount>{2, 4, 6, 8, 10, 12}));
  EXPECT_EQ(g.paradigms.size(), 2u);
  EXPECT_EQ(g.schedules.size(), 4u);
  EXPECT_EQ(g.chunks, (std::vector<std::uint64_t>{1}));

  // recommend(): no chunk axis — empty means "inherit base.chunk".
  const RecommendOptions ro;
  EXPECT_TRUE(ro.chunks.empty());
  EXPECT_EQ(ro.thread_counts, g.thread_counts);

  // sweep(): historical defaults predate the shared spec and must not move.
  const SweepGrid sg;
  EXPECT_EQ(sg.thread_counts, (std::vector<CoreCount>{2, 4, 8}));
  EXPECT_EQ(sg.paradigms, (std::vector<Paradigm>{Paradigm::OpenMP}));
  EXPECT_EQ(sg.schedules, (std::vector<runtime::OmpSchedule>{
                              runtime::OmpSchedule::StaticCyclic}));
  EXPECT_EQ(sg.chunks, (std::vector<std::uint64_t>{1}));

  // Both are the same spec underneath — a GridSpec& views either.
  const GridSpec& upcast = ro;
  EXPECT_TRUE(upcast.chunks.empty());
}

}  // namespace
}  // namespace pprophet::core
