#include "core/recommend.hpp"

#include <gtest/gtest.h>

#include "report/experiment.hpp"
#include "tree/builder.hpp"

namespace pprophet::core {
namespace {

using tree::ProgramTree;
using tree::TreeBuilder;

RecommendOptions quick_options() {
  RecommendOptions o;
  o.base = report::paper_options(Method::Synthesizer);
  o.thread_counts = {2, 4, 8};
  return o;
}

ProgramTree balanced_loop() {
  TreeBuilder b;
  b.begin_sec("s");
  b.begin_task("t").u(10'000).end_task().repeat_last(64);
  b.end_sec();
  return b.finish();
}

TEST(Recommend, BestIsTopOfSweep) {
  const Recommendation r = recommend(balanced_loop(), quick_options());
  ASSERT_FALSE(r.sweep.empty());
  EXPECT_DOUBLE_EQ(r.best.speedup, r.sweep.front().speedup);
  for (std::size_t i = 1; i < r.sweep.size(); ++i) {
    EXPECT_LE(r.sweep[i].speedup, r.sweep[i - 1].speedup);
  }
}

TEST(Recommend, BalancedLoopPrefersManyThreads) {
  const Recommendation r = recommend(balanced_loop(), quick_options());
  EXPECT_EQ(r.best.threads, 8u);
  EXPECT_GT(r.best.speedup, 6.0);
}

TEST(Recommend, EconomicalNeverExceedsBestThreads) {
  const Recommendation r = recommend(balanced_loop(), quick_options());
  EXPECT_LE(r.economical.threads, r.best.threads);
  EXPECT_GE(r.economical.speedup,
            r.best.speedup * (1.0 - quick_options().efficiency_knee) - 1e-9);
}

TEST(Recommend, LockBoundLoopRecommendsFewThreads) {
  // Fully serialized by one lock: more threads only add overhead, so the
  // economical pick is the smallest count.
  TreeBuilder b;
  b.begin_sec("s");
  for (int i = 0; i < 24; ++i) b.begin_task("t").l(1, 5'000).end_task();
  b.end_sec();
  const ProgramTree t = b.finish();
  const Recommendation r = recommend(t, quick_options());
  EXPECT_EQ(r.economical.threads, 2u);
  EXPECT_LT(r.best.speedup, 1.5);
}

TEST(Recommend, CilkEvaluatedOncePerThreadCount) {
  RecommendOptions o = quick_options();
  const Recommendation r = recommend(balanced_loop(), o);
  // OpenMP: 4 schedules × 3 counts; Cilk: 1 × 3 counts.
  EXPECT_EQ(r.sweep.size(), 4u * 3u + 3u);
}

TEST(Recommend, TriangularWorkloadAvoidsStaticBlock) {
  TreeBuilder b;
  b.begin_sec("s");
  for (int i = 1; i <= 48; ++i) {
    b.begin_task("t").u(static_cast<Cycles>(i) * 500).end_task();
  }
  b.end_sec();
  const Recommendation r = recommend(b.finish(), quick_options());
  EXPECT_NE(r.best.schedule, runtime::OmpSchedule::StaticBlock);
}

TEST(Recommend, RejectsEmptySweep) {
  RecommendOptions o = quick_options();
  o.thread_counts.clear();
  EXPECT_THROW(recommend(balanced_loop(), o), std::invalid_argument);
}

}  // namespace
}  // namespace pprophet::core
