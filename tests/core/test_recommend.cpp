#include "core/recommend.hpp"

#include <gtest/gtest.h>

#include "report/experiment.hpp"
#include "tree/builder.hpp"

namespace pprophet::core {
namespace {

using tree::ProgramTree;
using tree::TreeBuilder;

RecommendOptions quick_options() {
  RecommendOptions o;
  o.base = report::paper_options(Method::Synthesizer);
  o.thread_counts = {2, 4, 8};
  return o;
}

ProgramTree balanced_loop() {
  TreeBuilder b;
  b.begin_sec("s");
  b.begin_task("t").u(10'000).end_task().repeat_last(64);
  b.end_sec();
  return b.finish();
}

TEST(Recommend, BestIsTopOfSweep) {
  const Recommendation r = recommend(balanced_loop(), quick_options());
  ASSERT_FALSE(r.sweep.empty());
  EXPECT_DOUBLE_EQ(r.best.speedup, r.sweep.front().speedup);
  for (std::size_t i = 1; i < r.sweep.size(); ++i) {
    EXPECT_LE(r.sweep[i].speedup, r.sweep[i - 1].speedup);
  }
}

TEST(Recommend, BalancedLoopPrefersManyThreads) {
  const Recommendation r = recommend(balanced_loop(), quick_options());
  EXPECT_EQ(r.best.threads, 8u);
  EXPECT_GT(r.best.speedup, 6.0);
}

TEST(Recommend, EconomicalNeverExceedsBestThreads) {
  const Recommendation r = recommend(balanced_loop(), quick_options());
  EXPECT_LE(r.economical.threads, r.best.threads);
  EXPECT_GE(r.economical.speedup,
            r.best.speedup * (1.0 - quick_options().efficiency_knee) - 1e-9);
}

TEST(Recommend, LockBoundLoopRecommendsFewThreads) {
  // Fully serialized by one lock: more threads only add overhead, so the
  // economical pick is the smallest count.
  TreeBuilder b;
  b.begin_sec("s");
  for (int i = 0; i < 24; ++i) b.begin_task("t").l(1, 5'000).end_task();
  b.end_sec();
  const ProgramTree t = b.finish();
  const Recommendation r = recommend(t, quick_options());
  EXPECT_EQ(r.economical.threads, 2u);
  EXPECT_LT(r.best.speedup, 1.5);
}

TEST(Recommend, CilkEvaluatedOncePerThreadCount) {
  RecommendOptions o = quick_options();
  const Recommendation r = recommend(balanced_loop(), o);
  // OpenMP: 4 schedules × 3 counts; Cilk: 1 × 3 counts.
  EXPECT_EQ(r.sweep.size(), 4u * 3u + 3u);
}

TEST(Recommend, TriangularWorkloadAvoidsStaticBlock) {
  TreeBuilder b;
  b.begin_sec("s");
  for (int i = 1; i <= 48; ++i) {
    b.begin_task("t").u(static_cast<Cycles>(i) * 500).end_task();
  }
  b.end_sec();
  const Recommendation r = recommend(b.finish(), quick_options());
  EXPECT_NE(r.best.schedule, runtime::OmpSchedule::StaticBlock);
}

TEST(Recommend, RejectsEmptySweep) {
  RecommendOptions o = quick_options();
  o.thread_counts.clear();
  EXPECT_THROW(recommend(balanced_loop(), o), std::invalid_argument);
}

TEST(Recommend, RejectsEmptyParadigmAndScheduleDimensions) {
  // Every dimension independently empty must be the same hard error, not a
  // silent empty sweep.
  RecommendOptions no_paradigms = quick_options();
  no_paradigms.paradigms.clear();
  EXPECT_THROW(recommend(balanced_loop(), no_paradigms),
               std::invalid_argument);
  RecommendOptions no_schedules = quick_options();
  no_schedules.schedules.clear();
  EXPECT_THROW(recommend(balanced_loop(), no_schedules),
               std::invalid_argument);
}

TEST(Recommend, TieBreakingIsDeterministic) {
  // A perfectly balanced loop makes several schedules score identically;
  // the stable sort must keep the sweep order reproducible and `best` must
  // be exactly the front of the sweep on every run.
  const Recommendation a = recommend(balanced_loop(), quick_options());
  const Recommendation b = recommend(balanced_loop(), quick_options());
  ASSERT_EQ(a.sweep.size(), b.sweep.size());
  for (std::size_t i = 0; i < a.sweep.size(); ++i) {
    EXPECT_EQ(a.sweep[i].paradigm, b.sweep[i].paradigm) << i;
    EXPECT_EQ(a.sweep[i].schedule, b.sweep[i].schedule) << i;
    EXPECT_EQ(a.sweep[i].threads, b.sweep[i].threads) << i;
    EXPECT_DOUBLE_EQ(a.sweep[i].speedup, b.sweep[i].speedup) << i;
  }
  EXPECT_EQ(a.best.paradigm, b.best.paradigm);
  EXPECT_EQ(a.best.schedule, b.best.schedule);
  EXPECT_EQ(a.best.threads, b.best.threads);
  // Ties on speedup must not let a later entry overtake the front.
  EXPECT_DOUBLE_EQ(a.best.speedup, a.sweep.front().speedup);
}

TEST(Recommend, EfficiencyIsSpeedupOverThreads) {
  const Recommendation r = recommend(balanced_loop(), quick_options());
  for (const Candidate& c : r.sweep) {
    ASSERT_GT(c.threads, 0u);
    EXPECT_DOUBLE_EQ(c.efficiency,
                     c.speedup / static_cast<double>(c.threads));
  }
}

TEST(Recommend, SingleThreadCountStillRecommends) {
  RecommendOptions o = quick_options();
  o.thread_counts = {4};
  const Recommendation r = recommend(balanced_loop(), o);
  EXPECT_EQ(r.best.threads, 4u);
  EXPECT_EQ(r.economical.threads, 4u);
  EXPECT_EQ(r.sweep.size(), 4u + 1u);  // 4 OpenMP schedules + Cilk
}

TEST(Recommend, SynthesizerStaysTheDefaultEngine) {
  // The advisor always predicts with the Synthesizer (the paper's most
  // accurate emulator), even when the caller seeds base with another
  // method — only machine/runtime parameters may leak through base.
  RecommendOptions o = quick_options();
  const Recommendation with_syn = recommend(balanced_loop(), o);
  o.base = report::paper_options(Method::FastForward);
  o.base.method = Method::FastForward;
  const Recommendation with_ff = recommend(balanced_loop(), o);
  ASSERT_EQ(with_syn.sweep.size(), with_ff.sweep.size());
  for (std::size_t i = 0; i < with_syn.sweep.size(); ++i) {
    EXPECT_DOUBLE_EQ(with_syn.sweep[i].speedup, with_ff.sweep[i].speedup)
        << i;
  }
}

}  // namespace
}  // namespace pprophet::core
