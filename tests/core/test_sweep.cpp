// Sweep-engine tests: every cell of a batched sweep must be bit-identical
// to a fresh sequential core::predict call, for any worker count, and the
// per-section memo must actually share sub-results across grid points.
#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include "tree/builder.hpp"

namespace pprophet::core {
namespace {

using tree::ProgramTree;
using tree::TreeBuilder;

/// Non-trivial fixture tree: two top-level sections (one with a lock and a
/// nested section, one unbalanced), serial U glue, and compressed repeats.
ProgramTree fixture_tree() {
  TreeBuilder b;
  b.u(5'000);
  b.begin_sec("outer");
  b.begin_task("i0");
  b.u(800);
  b.l(1, 400);
  b.begin_sec("inner");
  b.begin_task("j").u(600).end_task().repeat_last(6);
  b.end_sec();
  b.u(200);
  b.end_task();
  b.begin_task("i1").u(1'500).l(1, 300).u(700).end_task().repeat_last(4);
  b.end_sec();
  b.u(2'500);
  b.begin_sec("tail");
  b.begin_task("k").u(900).end_task().repeat_last(12);
  b.end_sec();
  return b.finish();
}

PredictOptions base_options() {
  PredictOptions o;
  o.machine.cores = 12;
  return o;
}

/// A ≥24-point grid exercising every method plus dimensions some methods
/// ignore (paradigm for FF, schedule for Cilk, memory model for Real), so
/// canonical sub-keys overlap.
SweepGrid wide_grid() {
  SweepGrid grid;
  grid.methods = {Method::FastForward, Method::Synthesizer,
                  Method::Suitability, Method::GroundTruth};
  grid.paradigms = {Paradigm::OpenMP, Paradigm::CilkPlus};
  grid.schedules = {runtime::OmpSchedule::StaticCyclic,
                    runtime::OmpSchedule::StaticBlock,
                    runtime::OmpSchedule::Dynamic};
  grid.chunks = {1, 4};
  grid.thread_counts = {2, 4, 8};
  grid.memory_models = {false, true};
  grid.base = base_options();
  return grid;
}

PredictOptions options_of(const SweepGrid& grid, const SweepPoint& p) {
  PredictOptions o = grid.base;
  o.method = p.method;
  o.paradigm = p.paradigm;
  o.schedule = p.schedule;
  o.chunk = p.chunk;
  o.memory_model = p.memory_model;
  return o;
}

void expect_cells_match_sequential(const ProgramTree& t,
                                   const SweepGrid& grid,
                                   const SweepResult& res) {
  ASSERT_EQ(res.cells.size(), grid.size());
  for (const SweepCell& cell : res.cells) {
    const SpeedupEstimate seq =
        predict(t, cell.point.threads, options_of(grid, cell.point));
    // Bit-identical: exact equality on the doubles, not EXPECT_NEAR.
    EXPECT_EQ(cell.estimate.speedup, seq.speedup);
    EXPECT_EQ(cell.estimate.parallel_cycles, seq.parallel_cycles);
    EXPECT_EQ(cell.estimate.serial_cycles, seq.serial_cycles);
    EXPECT_EQ(cell.estimate.threads, seq.threads);
  }
}

TEST(Sweep, GridCellsAreBitIdenticalToSequentialPredict) {
  const ProgramTree t = fixture_tree();
  const SweepGrid grid = wide_grid();
  ASSERT_GE(grid.size(), 24u);
  for (const std::size_t workers : {1, 2, 8}) {
    SweepOptions sopts;
    sopts.workers = workers;
    const SweepResult res = sweep(t, grid, sopts);
    EXPECT_EQ(res.stats.workers, std::min<std::size_t>(workers, grid.size()));
    expect_cells_match_sequential(t, grid, res);
  }
}

TEST(Sweep, ResultsAreIdenticalAcrossWorkerCounts) {
  const ProgramTree t = fixture_tree();
  const SweepGrid grid = wide_grid();
  SweepOptions one;
  one.workers = 1;
  SweepOptions eight;
  eight.workers = 8;
  const SweepResult a = sweep(t, grid, one);
  const SweepResult b = sweep(t, grid, eight);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].estimate.speedup, b.cells[i].estimate.speedup);
    EXPECT_EQ(a.cells[i].estimate.parallel_cycles,
              b.cells[i].estimate.parallel_cycles);
  }
  // The memo contents are canonical, so the stats agree too.
  EXPECT_EQ(a.stats.section_evals, b.stats.section_evals);
  EXPECT_EQ(a.stats.cache_hits, b.stats.cache_hits);
}

TEST(Sweep, MemoReportsSharedSubKeys) {
  const ProgramTree t = fixture_tree();
  const SweepGrid grid = wide_grid();
  const SweepResult res = sweep(t, grid, {});
  const SweepStats& s = res.stats;
  EXPECT_EQ(s.grid_points, grid.size());
  // Two top-level sections per cell, looked up once each.
  EXPECT_EQ(s.section_lookups, grid.size() * 2);
  EXPECT_EQ(s.section_lookups, s.cache_hits + s.section_evals);
  // FF ignores the paradigm, Cilk the schedule/chunk, Suitability all but
  // threads, Real the memory model: plenty of hits.
  EXPECT_GT(s.cache_hits, 0u);
  EXPECT_GT(s.hit_rate(), 0.4);
  EXPECT_LT(s.section_evals, s.section_lookups);
  EXPECT_GE(s.wall_ms, 0.0);
}

TEST(Sweep, SinglePointSweepEqualsPredict) {
  const ProgramTree t = fixture_tree();
  SweepPoint p;
  p.method = Method::GroundTruth;
  p.threads = 6;
  const PredictOptions base = base_options();
  const SweepResult res = sweep_points(t, {&p, 1}, base);
  ASSERT_EQ(res.cells.size(), 1u);
  PredictOptions o = base;
  o.method = p.method;
  const SpeedupEstimate seq = predict(t, 6, o);
  EXPECT_EQ(res.cells[0].estimate.speedup, seq.speedup);
  EXPECT_EQ(res.cells[0].estimate.parallel_cycles, seq.parallel_cycles);
  EXPECT_EQ(res.stats.section_evals, 2u);  // two sections, no sharing
  EXPECT_EQ(res.stats.cache_hits, 0u);
}

TEST(Sweep, RepeatedSweepsAreDeterministic) {
  const ProgramTree t = fixture_tree();
  const SweepGrid grid = wide_grid();
  const SweepResult a = sweep(t, grid, {});
  const SweepResult b = sweep(t, grid, {});
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].estimate.speedup, b.cells[i].estimate.speedup);
  }
}

TEST(Sweep, BurdenedSynthesizerCellsMatchSequential) {
  ProgramTree t = fixture_tree();
  // Pretend the memory model ran: distinct burdens per thread count.
  for (const auto& child : t.root->children()) {
    if (child->kind() != tree::NodeKind::Sec) continue;
    child->set_burden(2, 1.1);
    child->set_burden(4, 1.3);
    child->set_burden(8, 1.7);
  }
  SweepGrid grid;
  grid.methods = {Method::Synthesizer, Method::FastForward};
  grid.memory_models = {false, true};
  grid.thread_counts = {2, 4, 8};
  grid.base = base_options();
  const SweepResult res = sweep(t, grid, {});
  expect_cells_match_sequential(t, grid, res);
  // Pred and PredM must differ once burdens are attached.
  const auto& cells = res.cells;
  bool differs = false;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    for (std::size_t j = 0; j < cells.size(); ++j) {
      if (cells[i].point.method == cells[j].point.method &&
          cells[i].point.threads == cells[j].point.threads &&
          !cells[i].point.memory_model && cells[j].point.memory_model &&
          cells[i].estimate.speedup != cells[j].estimate.speedup) {
        differs = true;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Sweep, EmptyPointListYieldsEmptyResult) {
  const ProgramTree t = fixture_tree();
  const SweepResult res =
      sweep_points(t, std::span<const SweepPoint>{}, base_options());
  EXPECT_TRUE(res.cells.empty());
  EXPECT_EQ(res.stats.grid_points, 0u);
  EXPECT_EQ(res.stats.section_evals, 0u);
}

TEST(Sweep, RejectsBadInputs) {
  const ProgramTree t = fixture_tree();
  SweepGrid grid = wide_grid();
  grid.thread_counts = {4, 0};
  EXPECT_THROW(sweep(t, grid, {}), std::invalid_argument);
  EXPECT_THROW(sweep(ProgramTree{}, wide_grid(), {}), std::invalid_argument);
}

TEST(Sweep, GridExpansionIsRowMajorAndComplete) {
  SweepGrid grid;
  grid.methods = {Method::FastForward, Method::Synthesizer};
  grid.paradigms = {Paradigm::OpenMP};
  grid.schedules = {runtime::OmpSchedule::StaticCyclic,
                    runtime::OmpSchedule::Dynamic};
  grid.chunks = {1};
  grid.thread_counts = {2, 4};
  grid.memory_models = {false};
  const auto pts = grid.points();
  ASSERT_EQ(pts.size(), grid.size());
  ASSERT_EQ(pts.size(), 8u);
  EXPECT_EQ(pts[0].method, Method::FastForward);
  EXPECT_EQ(pts[0].schedule, runtime::OmpSchedule::StaticCyclic);
  EXPECT_EQ(pts[0].threads, 2u);
  EXPECT_EQ(pts[1].threads, 4u);  // threads vary fastest
  EXPECT_EQ(pts[2].schedule, runtime::OmpSchedule::Dynamic);
  EXPECT_EQ(pts[4].method, Method::Synthesizer);
}

}  // namespace
}  // namespace pprophet::core
