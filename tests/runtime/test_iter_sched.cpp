#include "runtime/iter_sched.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace pprophet::runtime {
namespace {

// Collects every index rank r receives.
std::vector<std::uint64_t> drain(IterScheduler& s, std::uint32_t rank) {
  std::vector<std::uint64_t> out;
  while (auto r = s.next(rank)) {
    for (std::uint64_t i = r->begin; i < r->end; ++i) out.push_back(i);
  }
  return out;
}

TEST(StaticCyclic, Chunk1RoundRobin) {
  auto s = make_scheduler(OmpSchedule::StaticCyclic, 7, 3, 1);
  EXPECT_EQ(drain(*s, 0), (std::vector<std::uint64_t>{0, 3, 6}));
  EXPECT_EQ(drain(*s, 1), (std::vector<std::uint64_t>{1, 4}));
  EXPECT_EQ(drain(*s, 2), (std::vector<std::uint64_t>{2, 5}));
}

TEST(StaticCyclic, Chunk2RoundRobin) {
  auto s = make_scheduler(OmpSchedule::StaticCyclic, 10, 2, 2);
  EXPECT_EQ(drain(*s, 0), (std::vector<std::uint64_t>{0, 1, 4, 5, 8, 9}));
  EXPECT_EQ(drain(*s, 1), (std::vector<std::uint64_t>{2, 3, 6, 7}));
}

TEST(StaticBlock, EvenPartition) {
  auto s = make_scheduler(OmpSchedule::StaticBlock, 8, 4, 0);
  EXPECT_EQ(drain(*s, 0), (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(drain(*s, 3), (std::vector<std::uint64_t>{6, 7}));
}

TEST(StaticBlock, RemainderGoesToLowRanks) {
  auto s = make_scheduler(OmpSchedule::StaticBlock, 10, 4, 0);
  EXPECT_EQ(drain(*s, 0), (std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_EQ(drain(*s, 1), (std::vector<std::uint64_t>{3, 4, 5}));
  EXPECT_EQ(drain(*s, 2), (std::vector<std::uint64_t>{6, 7}));
  EXPECT_EQ(drain(*s, 3), (std::vector<std::uint64_t>{8, 9}));
}

TEST(StaticBlock, MoreThreadsThanIterations) {
  auto s = make_scheduler(OmpSchedule::StaticBlock, 2, 4, 0);
  EXPECT_EQ(drain(*s, 0).size(), 1u);
  EXPECT_EQ(drain(*s, 1).size(), 1u);
  EXPECT_TRUE(drain(*s, 2).empty());
  EXPECT_TRUE(drain(*s, 3).empty());
}

TEST(Dynamic, FirstComeFirstServed) {
  auto s = make_scheduler(OmpSchedule::Dynamic, 5, 3, 1);
  // Interleaved requests: whoever asks gets the next index.
  EXPECT_EQ(s->next(2)->begin, 0u);
  EXPECT_EQ(s->next(0)->begin, 1u);
  EXPECT_EQ(s->next(2)->begin, 2u);
  EXPECT_EQ(s->next(1)->begin, 3u);
  EXPECT_EQ(s->next(0)->begin, 4u);
  EXPECT_FALSE(s->next(0).has_value());
}

TEST(Dynamic, ChunkedHandout) {
  auto s = make_scheduler(OmpSchedule::Dynamic, 7, 2, 3);
  const auto r0 = s->next(0);
  EXPECT_EQ(r0->size(), 3u);
  const auto r1 = s->next(1);
  EXPECT_EQ(r1->size(), 3u);
  const auto r2 = s->next(0);
  EXPECT_EQ(r2->size(), 1u);  // remainder
  EXPECT_FALSE(s->next(1).has_value());
}

TEST(Guided, ChunksShrinkTowardsTheTail) {
  auto s = make_scheduler(OmpSchedule::Guided, 100, 4, 1);
  std::vector<std::uint64_t> sizes;
  while (auto r = s->next(0)) sizes.push_back(r->size());
  ASSERT_GE(sizes.size(), 4u);
  EXPECT_EQ(sizes.front(), 25u);  // remaining/t = 100/4
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_LE(sizes[i], sizes[i - 1]);
  }
  EXPECT_EQ(sizes.back(), 1u);
}

TEST(Guided, RespectsMinimumChunk) {
  auto s = make_scheduler(OmpSchedule::Guided, 40, 4, 8);
  while (auto r = s->next(1)) {
    // Every chunk except possibly the last is at least the minimum.
    if (r->end < 40) EXPECT_GE(r->size(), 8u);
  }
}

TEST(Guided, SharedAcrossRanks) {
  auto s = make_scheduler(OmpSchedule::Guided, 64, 2, 1);
  const auto a = s->next(0);
  const auto b = s->next(1);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->end, b->begin);  // one shared stream
}

TEST(AllSchedulers, CoverEveryIterationExactlyOnce) {
  for (const OmpSchedule kind : {OmpSchedule::StaticCyclic,
                                 OmpSchedule::StaticBlock,
                                 OmpSchedule::Dynamic,
                                 OmpSchedule::Guided}) {
    for (const std::uint64_t n : {0ull, 1ull, 5ull, 64ull, 1000ull}) {
      for (const std::uint32_t t : {1u, 2u, 7u, 12u}) {
        auto s = make_scheduler(kind, n, t, 2);
        std::vector<int> seen(n, 0);
        for (std::uint32_t r = 0; r < t; ++r) {
          for (const std::uint64_t i : drain(*s, r)) {
            ASSERT_LT(i, n);
            seen[i]++;
          }
        }
        const int total = std::accumulate(seen.begin(), seen.end(), 0);
        EXPECT_EQ(static_cast<std::uint64_t>(total), n)
            << to_string(kind) << " n=" << n << " t=" << t;
        for (const int c : seen) EXPECT_EQ(c, 1);
      }
    }
  }
}

TEST(MakeScheduler, RejectsZeroThreads) {
  EXPECT_THROW(make_scheduler(OmpSchedule::Dynamic, 5, 0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace pprophet::runtime
