#include "runtime/memsplit.hpp"

#include <gtest/gtest.h>

namespace pprophet::runtime {
namespace {

TEST(MemSplit, NullCountersGiveZeroSplit) {
  const MemSplit s = split_from_counters(nullptr, 200);
  EXPECT_DOUBLE_EQ(s.mem_fraction, 0.0);
  EXPECT_DOUBLE_EQ(s.traffic_mbps, 0.0);
}

TEST(MemSplit, FromCountersMatchesEq1Decomposition) {
  tree::SectionCounters c;
  c.cycles = 100'000;
  c.llc_misses = 100;  // ω=200 -> 20'000 memory cycles
  c.instructions = 50'000;
  const MemSplit s = split_from_counters(&c, 200);
  EXPECT_DOUBLE_EQ(s.mem_fraction, 0.2);
  EXPECT_GT(s.traffic_mbps, 0.0);
}

TEST(MemSplit, MemFractionClampedToOne) {
  tree::SectionCounters c;
  c.cycles = 1'000;
  c.llc_misses = 100;  // 20'000 >> 1'000
  const MemSplit s = split_from_counters(&c, 200);
  EXPECT_DOUBLE_EQ(s.mem_fraction, 1.0);
}

TEST(LeafCostModel, RealModeSplitsLength) {
  LeafCostModel m;
  m.mode = LeafCostModel::Mode::Real;
  m.split.mem_fraction = 0.25;
  m.split.traffic_mbps = 1234.0;
  const machine::Op op = m.leaf_op(1000);
  EXPECT_EQ(op.kind, machine::Op::Kind::Exec);
  EXPECT_EQ(op.compute, 750u);
  EXPECT_EQ(op.mem, 250u);
  EXPECT_DOUBLE_EQ(op.traffic_mbps, 1234.0);
}

TEST(LeafCostModel, RealModePreservesTotalLength) {
  LeafCostModel m;
  m.split.mem_fraction = 0.333;
  for (const Cycles len : {1u, 7u, 999u, 12345u}) {
    const machine::Op op = m.leaf_op(len);
    EXPECT_EQ(op.compute + op.mem, len);
  }
}

TEST(LeafCostModel, SynthModeAppliesBurden) {
  LeafCostModel m;
  m.mode = LeafCostModel::Mode::Synth;
  m.burden = 1.4;
  const machine::Op op = m.leaf_op(1000);
  EXPECT_EQ(op.compute, 1400u);
  EXPECT_EQ(op.mem, 0u);
  EXPECT_DOUBLE_EQ(op.traffic_mbps, 0.0);
}

TEST(LeafCostModel, SynthBurdenOneIsIdentity) {
  LeafCostModel m;
  m.mode = LeafCostModel::Mode::Synth;
  const machine::Op op = m.leaf_op(777);
  EXPECT_EQ(op.compute, 777u);
}

}  // namespace
}  // namespace pprophet::runtime
