// Additional schedule-semantics coverage across the executor and the FF:
// chunked static/dynamic policies, guided in the FF, and nested sections
// under pull-based scheduling.
#include <gtest/gtest.h>

#include "emul/ff.hpp"
#include "runtime/omp_executor.hpp"
#include "tree/builder.hpp"

namespace pprophet::runtime {
namespace {

using tree::ProgramTree;
using tree::TreeBuilder;

OmpConfig cfg(std::uint32_t threads, OmpSchedule sched, std::uint64_t chunk) {
  OmpConfig c;
  c.num_threads = threads;
  c.schedule = sched;
  c.chunk = chunk;
  c.overheads = OmpOverheads{0, 0, 0, 0, 0, 0, 0};
  return c;
}

machine::MachineConfig cores(CoreCount n) {
  machine::MachineConfig m;
  m.cores = n;
  m.context_switch = 0;
  return m;
}

ProgramTree ramp_loop(int iters, Cycles step) {
  TreeBuilder b;
  b.begin_sec("s");
  for (int i = 1; i <= iters; ++i) {
    b.begin_task("t").u(static_cast<Cycles>(i) * step).end_task();
  }
  b.end_sec();
  return b.finish();
}

TEST(ChunkedSchedules, StaticChunk2MatchesHandComputation) {
  // 8 iterations of length 100·i, 2 threads, chunks of 2:
  // T0: {1,2} {5,6} = 1400; T1: {3,4} {7,8} = 2200.
  const ProgramTree t = ramp_loop(8, 100);
  const RunResult r = run_tree_omp(
      t, cores(2), cfg(2, OmpSchedule::StaticCyclic, 2), ExecMode::real());
  // ±1 cycle of event rounding at op boundaries.
  EXPECT_GE(r.elapsed, 2200u);
  EXPECT_LE(r.elapsed, 2202u);
}

TEST(ChunkedSchedules, DynamicChunk2ReducesDispatches) {
  TreeBuilder b;
  b.begin_sec("s");
  b.begin_task("t").u(100).end_task().repeat_last(16);
  b.end_sec();
  const ProgramTree t = b.finish();
  OmpConfig c1 = cfg(1, OmpSchedule::Dynamic, 1);
  c1.overheads.dynamic_dispatch = 10;
  OmpConfig c4 = c1;
  c4.chunk = 4;
  const Cycles fine = run_tree_omp(t, cores(1), c1, ExecMode::real()).elapsed;
  const Cycles coarse = run_tree_omp(t, cores(1), c4, ExecMode::real()).elapsed;
  EXPECT_EQ(fine, 1600u + 16u * 10u);
  EXPECT_EQ(coarse, 1600u + 4u * 10u);
}

TEST(ChunkedSchedules, LargeChunkDegradesImbalancedLoops) {
  // Ramp loop: chunk 8 under dynamic means one thread eats the heavy tail.
  const ProgramTree t = ramp_loop(16, 1'000);
  const Cycles fine =
      run_tree_omp(t, cores(4), cfg(4, OmpSchedule::Dynamic, 1),
                   ExecMode::real())
          .elapsed;
  const Cycles coarse =
      run_tree_omp(t, cores(4), cfg(4, OmpSchedule::Dynamic, 8),
                   ExecMode::real())
          .elapsed;
  EXPECT_GT(coarse, fine);
}

TEST(FfGuided, MatchesExecutorOnRampLoop) {
  const ProgramTree t = ramp_loop(32, 500);
  emul::FfConfig fc;
  fc.num_threads = 4;
  fc.schedule = OmpSchedule::Guided;
  fc.chunk = 1;
  fc.overheads = OmpOverheads{0, 0, 0, 0, 0, 0, 0};
  const double ff = emul::emulate_ff(t, fc).speedup();
  const RunResult run = run_tree_omp(
      t, cores(4), cfg(4, OmpSchedule::Guided, 1), ExecMode::real());
  const double real = static_cast<double>(t.total_serial_cycles()) /
                      static_cast<double>(run.elapsed);
  EXPECT_NEAR(ff, real, 0.15 * real);
}

TEST(NestedDynamic, InnerSectionsCompleteUnderPullScheduling) {
  // Outer dynamic loop whose iterations contain nested dynamic loops: the
  // executor must neither deadlock nor lose iterations.
  TreeBuilder b;
  b.begin_sec("outer");
  for (int i = 0; i < 6; ++i) {
    b.begin_task("ot");
    b.u(500);
    b.begin_sec("inner");
    for (int j = 0; j < 4; ++j) b.begin_task("it").u(250).end_task();
    b.end_sec();
    b.end_task();
  }
  b.end_sec();
  const ProgramTree t = b.finish();
  const Cycles work = t.total_serial_cycles();
  const RunResult r = run_tree_omp(
      t, cores(4), cfg(4, OmpSchedule::Dynamic, 1), ExecMode::real());
  EXPECT_GE(r.stats.total_busy, work);  // everything executed
  EXPECT_LT(r.elapsed, work);           // and some of it in parallel
  // FF handles the same tree (its dynamic stack covers nested contexts).
  emul::FfConfig fc;
  fc.num_threads = 4;
  fc.schedule = OmpSchedule::Dynamic;
  fc.overheads = OmpOverheads{0, 0, 0, 0, 0, 0, 0};
  const emul::FfResult ff = emul::emulate_ff(t, fc);
  EXPECT_GT(ff.speedup(), 1.0);
  EXPECT_LE(ff.speedup(), 4.01);
}

TEST(ChunkedSchedules, FfStaticChunkMatchesExecutor) {
  const ProgramTree t = ramp_loop(8, 100);
  emul::FfConfig fc;
  fc.num_threads = 2;
  fc.schedule = OmpSchedule::StaticCyclic;
  fc.chunk = 2;
  fc.overheads = OmpOverheads{0, 0, 0, 0, 0, 0, 0};
  EXPECT_EQ(emul::emulate_ff(t, fc).parallel_cycles, 2200u);
}

}  // namespace
}  // namespace pprophet::runtime
