#include "runtime/cilk_executor.hpp"

#include <gtest/gtest.h>

#include "tree/builder.hpp"

namespace pprophet::runtime {
namespace {

using tree::ProgramTree;
using tree::TreeBuilder;

CilkConfig workers(std::uint32_t n, std::uint64_t grain = 0) {
  CilkConfig c;
  c.num_workers = n;
  c.grain = grain;
  c.overheads = CilkOverheads{0, 0, 0, 0, 0, 0};
  return c;
}

machine::MachineConfig cores(CoreCount n) {
  machine::MachineConfig m;
  m.cores = n;
  m.quantum = 100'000;
  m.context_switch = 0;
  return m;
}

ProgramTree flat_loop(std::uint64_t iters, Cycles len) {
  TreeBuilder b;
  b.begin_sec("loop");
  b.begin_task("t").u(len).end_task().repeat_last(iters);
  b.end_sec();
  return b.finish();
}

/// FFT-style recursion: each level is a Sec with two tasks that each
/// contain the next level, plus a leaf compute.
void add_recursive(TreeBuilder& b, int depth, Cycles leaf_len) {
  if (depth == 0) {
    b.u(leaf_len);
    return;
  }
  b.begin_sec("rec");
  for (int i = 0; i < 2; ++i) {
    b.begin_task("half");
    add_recursive(b, depth - 1, leaf_len);
    b.end_task();
  }
  b.end_sec();
  b.u(leaf_len);  // combine step after the recursive calls
}

ProgramTree recursive_tree(int depth, Cycles leaf_len) {
  TreeBuilder b;
  b.begin_sec("top");
  b.begin_task("root");
  add_recursive(b, depth, leaf_len);
  b.end_task();
  b.end_sec();
  return b.finish();
}

TEST(CilkExecutor, SingleWorkerMatchesSerial) {
  const ProgramTree t = flat_loop(32, 500);
  const RunResult r =
      run_tree_cilk(t, cores(1), workers(1), ExecMode::real());
  EXPECT_EQ(r.elapsed, 32u * 500u);
}

TEST(CilkExecutor, FlatLoopScalesNearLinearly) {
  const ProgramTree t = flat_loop(64, 1000);
  const Cycles t1 =
      run_tree_cilk(t, cores(1), workers(1), ExecMode::real()).elapsed;
  for (const std::uint32_t n : {2u, 4u, 8u}) {
    const Cycles tn =
        run_tree_cilk(t, cores(n), workers(n), ExecMode::real()).elapsed;
    const double speedup = static_cast<double>(t1) / static_cast<double>(tn);
    EXPECT_GT(speedup, 0.85 * n) << n << " workers";
    EXPECT_LE(speedup, 1.0 * n + 0.01);
  }
}

TEST(CilkExecutor, WorkConservedWithSplitting) {
  const ProgramTree t = flat_loop(100, 123);
  const RunResult r =
      run_tree_cilk(t, cores(4), workers(4, /*grain=*/3), ExecMode::real());
  EXPECT_EQ(r.stats.total_busy, 100u * 123u);
}

TEST(CilkExecutor, RecursiveParallelismScales) {
  // depth 6: 2^6 = 64 leaves of 1000 cycles plus combine steps.
  const ProgramTree t = recursive_tree(6, 1000);
  const Cycles serial = t.total_serial_cycles();
  const Cycles t1 =
      run_tree_cilk(t, cores(1), workers(1), ExecMode::real()).elapsed;
  EXPECT_EQ(t1, serial);
  const Cycles t4 =
      run_tree_cilk(t, cores(4), workers(4), ExecMode::real()).elapsed;
  const double speedup = static_cast<double>(t1) / static_cast<double>(t4);
  EXPECT_GT(speedup, 2.5);
  EXPECT_LE(speedup, 4.01);
}

TEST(CilkExecutor, FixedWorkerPoolNoOversubscription) {
  // Unlike nested OpenMP, recursion must not create extra OS threads.
  const ProgramTree t = recursive_tree(5, 500);
  const RunResult r =
      run_tree_cilk(t, cores(4), workers(4), ExecMode::real());
  EXPECT_EQ(r.stats.spawned_threads, 4u);
  EXPECT_EQ(r.stats.preemptions, 0u);
}

TEST(CilkExecutor, StealOverheadCharged) {
  const ProgramTree t = flat_loop(16, 1000);
  CilkConfig with = workers(4, 1);
  with.overheads.steal = 2000;
  const Cycles costly =
      run_tree_cilk(t, cores(4), with, ExecMode::real()).elapsed;
  const Cycles free =
      run_tree_cilk(t, cores(4), workers(4, 1), ExecMode::real()).elapsed;
  EXPECT_GT(costly, free);
}

TEST(CilkExecutor, LocksSerializeAcrossWorkers) {
  TreeBuilder b;
  b.begin_sec("s");
  for (int i = 0; i < 6; ++i) b.begin_task("t").l(2, 400).end_task();
  b.end_sec();
  const ProgramTree t = b.finish();
  const RunResult r =
      run_tree_cilk(t, cores(6), workers(6, 1), ExecMode::real());
  EXPECT_EQ(r.elapsed, 6u * 400u);
}

TEST(CilkExecutor, SynthModeBurdenApplied) {
  TreeBuilder b;
  b.begin_sec("s");
  b.current()->set_burden(4, 2.0);
  b.begin_task("t").u(1000).end_task().repeat_last(4);
  b.end_sec();
  const ProgramTree t = b.finish();
  ExecMode mode = ExecMode::synth_mode();
  mode.synth = SynthOverheads{0, 0};  // isolate the burden effect
  const RunResult r = run_tree_cilk(t, cores(4), workers(4, 1), mode);
  EXPECT_EQ(r.elapsed, 2000u);  // each iteration doubled by the burden
}

TEST(CilkExecutor, SynthTraversalOverheadTracked) {
  const ProgramTree t = flat_loop(10, 100);
  ExecMode mode = ExecMode::synth_mode();
  mode.synth.access_node = 50;
  mode.synth.recursive_call = 50;
  const RunResult r = run_tree_cilk(t, cores(1), workers(1), mode);
  EXPECT_EQ(r.traversal_overhead, 10u * 50u + 50u);
  EXPECT_EQ(r.net(), 10u * 100u);
}

TEST(CilkExecutor, DeterministicAcrossRuns) {
  const ProgramTree t = recursive_tree(5, 700);
  const Cycles a =
      run_tree_cilk(t, cores(3), workers(3), ExecMode::real()).elapsed;
  const Cycles b2 =
      run_tree_cilk(t, cores(3), workers(3), ExecMode::real()).elapsed;
  EXPECT_EQ(a, b2);
}

TEST(CilkExecutor, SerialTailAfterSectionRunsOnMaster) {
  TreeBuilder b;
  b.begin_sec("s");
  b.begin_task("t").u(500).end_task().repeat_last(4);
  b.end_sec();
  b.u(100);
  const ProgramTree t = b.finish();
  const RunResult r =
      run_tree_cilk(t, cores(4), workers(4, 1), ExecMode::real());
  EXPECT_EQ(r.elapsed, 600u);
}

TEST(CilkExecutor, RejectsBadInputs) {
  const ProgramTree t = flat_loop(4, 10);
  EXPECT_THROW(run_tree_cilk(t, cores(2), workers(0), ExecMode::real()),
               std::invalid_argument);
  EXPECT_THROW(run_tree_cilk(ProgramTree{}, cores(2), workers(2),
                             ExecMode::real()),
               std::invalid_argument);
}

TEST(CilkExecutor, GrainLimitsSplitDepth) {
  // With grain == trip count there is a single item: serial execution even
  // with many workers.
  const ProgramTree t = flat_loop(32, 100);
  const RunResult r =
      run_tree_cilk(t, cores(4), workers(4, /*grain=*/32), ExecMode::real());
  EXPECT_EQ(r.elapsed, 3200u);
}

}  // namespace
}  // namespace pprophet::runtime
