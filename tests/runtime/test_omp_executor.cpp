#include "runtime/omp_executor.hpp"

#include <gtest/gtest.h>

#include "tree/builder.hpp"

namespace pprophet::runtime {
namespace {

using tree::ProgramTree;
using tree::TreeBuilder;

OmpConfig zero_overhead(std::uint32_t threads, OmpSchedule sched,
                        std::uint64_t chunk = 1) {
  OmpConfig c;
  c.num_threads = threads;
  c.schedule = sched;
  c.chunk = chunk;
  c.overheads = OmpOverheads{0, 0, 0, 0, 0, 0, 0};
  return c;
}

machine::MachineConfig cores(CoreCount n, Cycles quantum = 100'000) {
  machine::MachineConfig m;
  m.cores = n;
  m.quantum = quantum;
  m.context_switch = 0;
  return m;
}

// The paper's Figure 5 loop: three unequal iterations with a critical
// section. I0 = U150 L450 U50; I1 = U100 L300 U200; I2 = U150 L50 U50.
// Serial length 1500.
ProgramTree figure5_tree() {
  TreeBuilder b;
  b.begin_sec("loop");
  b.begin_task("I0").u(150).l(1, 450).u(50).end_task();
  b.begin_task("I1").u(100).l(1, 300).u(200).end_task();
  b.begin_task("I2").u(150).l(1, 50).u(50).end_task();
  b.end_sec();
  return b.finish();
}

TEST(OmpExecutor, SingleThreadMatchesSerialLength) {
  const ProgramTree t = figure5_tree();
  const RunResult r = run_tree_omp(t, cores(1),
                                   zero_overhead(1, OmpSchedule::StaticBlock),
                                   ExecMode::real());
  EXPECT_EQ(r.elapsed, 1500u);
}

// Figure 5 case 1: schedule(static,1), dual core. Thread 0 runs I0 and I2,
// thread 1 runs I1. With our lock semantics T1 reaches the lock first at
// t=100, so T0 waits 150→400; the emulated parallel time is 1150, the
// paper's reported value.
TEST(OmpExecutor, Figure5Static1) {
  const ProgramTree t = figure5_tree();
  const RunResult r = run_tree_omp(t, cores(2),
                                   zero_overhead(2, OmpSchedule::StaticCyclic),
                                   ExecMode::real());
  EXPECT_EQ(r.elapsed, 1150u);
}

// Figure 5 case 2: schedule(static) blocks {I0,I1} / {I2}: 1250 cycles.
TEST(OmpExecutor, Figure5StaticBlock) {
  const ProgramTree t = figure5_tree();
  const RunResult r = run_tree_omp(t, cores(2),
                                   zero_overhead(2, OmpSchedule::StaticBlock),
                                   ExecMode::real());
  EXPECT_EQ(r.elapsed, 1250u);
}

// Figure 5 case 3: schedule(dynamic,1). The spawned worker fetches first,
// so it runs I0 while the master takes I1 then I2: the master holds the
// lock 100→400, the worker waits 150→400 and holds 400→850; the master
// reaches I2's lock at 750, waits until 850, and finishes at 950 — exactly
// the paper's reported 950 (speedup 1500/950 ≈ 1.58).
TEST(OmpExecutor, Figure5Dynamic1) {
  const ProgramTree t = figure5_tree();
  const RunResult r = run_tree_omp(t, cores(2),
                                   zero_overhead(2, OmpSchedule::Dynamic),
                                   ExecMode::real());
  EXPECT_EQ(r.elapsed, 950u);
}

TEST(OmpExecutor, SchedulePolicyOrderingMatchesFigure5) {
  // static,1 beats static, dynamic,1 beats both (for this imbalance).
  const ProgramTree t = figure5_tree();
  const Cycles s1 =
      run_tree_omp(t, cores(2), zero_overhead(2, OmpSchedule::StaticCyclic),
                   ExecMode::real())
          .elapsed;
  const Cycles sb =
      run_tree_omp(t, cores(2), zero_overhead(2, OmpSchedule::StaticBlock),
                   ExecMode::real())
          .elapsed;
  const Cycles dy =
      run_tree_omp(t, cores(2), zero_overhead(2, OmpSchedule::Dynamic),
                   ExecMode::real())
          .elapsed;
  EXPECT_LT(s1, sb);
  EXPECT_LT(dy, s1);
}

TEST(OmpExecutor, BarrierBlocksSerialTail) {
  TreeBuilder b;
  b.begin_sec("s");
  b.begin_task("short").u(100).end_task();
  b.begin_task("long").u(1000).end_task();
  b.end_sec(true);
  b.u(50);
  const ProgramTree t = b.finish();
  const RunResult r = run_tree_omp(t, cores(2),
                                   zero_overhead(2, OmpSchedule::StaticCyclic),
                                   ExecMode::real());
  EXPECT_EQ(r.elapsed, 1050u);
}

TEST(OmpExecutor, NowaitLetsMasterContinue) {
  TreeBuilder b;
  b.begin_sec("s");
  b.begin_task("short").u(100).end_task();
  b.begin_task("long").u(1000).end_task();
  b.end_sec(false);  // nowait
  b.u(50);
  const ProgramTree t = b.finish();
  const RunResult r = run_tree_omp(t, cores(2),
                                   zero_overhead(2, OmpSchedule::StaticCyclic),
                                   ExecMode::real());
  // Master (iteration 0, 100 cycles) proceeds to the tail U(50); the long
  // iteration bounds the total.
  EXPECT_EQ(r.elapsed, 1000u);
}

TEST(OmpExecutor, PerfectlyBalancedLoopScalesLinearly) {
  TreeBuilder b;
  b.begin_sec("s");
  b.begin_task("t").u(1000).end_task().repeat_last(64);
  b.end_sec();
  const ProgramTree t = b.finish();
  for (const CoreCount n : {1u, 2u, 4u, 8u}) {
    const RunResult r = run_tree_omp(
        t, cores(n), zero_overhead(n, OmpSchedule::StaticCyclic),
        ExecMode::real());
    EXPECT_EQ(r.elapsed, 64u * 1000u / n) << n << " cores";
  }
}

TEST(OmpExecutor, FullySerializedByLock) {
  TreeBuilder b;
  b.begin_sec("s");
  for (int i = 0; i < 8; ++i) b.begin_task("t").l(1, 500).end_task();
  b.end_sec();
  const ProgramTree t = b.finish();
  const RunResult r = run_tree_omp(t, cores(8),
                                   zero_overhead(8, OmpSchedule::StaticCyclic),
                                   ExecMode::real());
  EXPECT_EQ(r.elapsed, 8u * 500u);
  EXPECT_EQ(r.stats.lock_contentions, 7u);
}

TEST(OmpExecutor, ForkJoinOverheadsCharged) {
  TreeBuilder b;
  b.begin_sec("s");
  b.begin_task("t").u(100).end_task().repeat_last(4);
  b.end_sec();
  const ProgramTree t = b.finish();
  OmpConfig c = zero_overhead(4, OmpSchedule::StaticCyclic);
  c.overheads.fork_base = 1000;
  c.overheads.fork_per_thread = 100;
  c.overheads.join_barrier = 50;
  const RunResult r = run_tree_omp(t, cores(4), c, ExecMode::real());
  // fork (1000 + 3*100) + work 100 + barrier 50 = 1450 on the critical path.
  EXPECT_EQ(r.elapsed, 1450u);
}

TEST(OmpExecutor, DynamicDispatchCostPerChunk) {
  TreeBuilder b;
  b.begin_sec("s");
  b.begin_task("t").u(100).end_task().repeat_last(10);
  b.end_sec();
  const ProgramTree t = b.finish();
  OmpConfig c = zero_overhead(1, OmpSchedule::Dynamic);
  c.overheads.dynamic_dispatch = 7;
  const RunResult r = run_tree_omp(t, cores(1), c, ExecMode::real());
  EXPECT_EQ(r.elapsed, 10u * 100u + 10u * 7u);
}

// The Figure 7 nested loop: outer section of two tasks, each containing a
// nested two-iteration section with lengths {10,5} and {5,10} (scaled).
// Preemptive oversubscription must deliver ~2x, not the FF's 1.5x.
TEST(OmpExecutor, Figure7NestedOversubscriptionReaches2x) {
  const Cycles k = 10'000;
  TreeBuilder b;
  b.begin_sec("Loop1");
  b.begin_task("i0");
  b.begin_sec("LoopA");
  b.begin_task("a0").u(10 * k).end_task();
  b.begin_task("a1").u(5 * k).end_task();
  b.end_sec();
  b.end_task();
  b.begin_task("i1");
  b.begin_sec("LoopB");
  b.begin_task("b0").u(5 * k).end_task();
  b.begin_task("b1").u(10 * k).end_task();
  b.end_sec();
  b.end_task();
  b.end_sec();
  const ProgramTree t = b.finish();
  const Cycles serial = t.total_serial_cycles();
  EXPECT_EQ(serial, 30 * k);

  const RunResult r = run_tree_omp(
      t, cores(2, /*quantum=*/k / 10),
      zero_overhead(2, OmpSchedule::StaticCyclic), ExecMode::real());
  const double speedup =
      static_cast<double>(serial) / static_cast<double>(r.elapsed);
  EXPECT_GT(speedup, 1.85);
  EXPECT_LE(speedup, 2.01);
  EXPECT_GT(r.stats.spawned_threads, 2u);  // nested teams spawned threads
}

TEST(OmpExecutor, SynthBurdenFactorInflatesSection) {
  TreeBuilder b;
  b.begin_sec("s");
  b.current()->set_burden(2, 1.5);
  b.begin_task("t").u(1000).end_task().repeat_last(2);
  b.end_sec();
  const ProgramTree t = b.finish();
  ExecMode mode = ExecMode::synth_mode();
  mode.synth = SynthOverheads{0, 0};  // isolate the burden effect
  const RunResult r = run_tree_omp(t, cores(2),
                                   zero_overhead(2, OmpSchedule::StaticCyclic),
                                   mode);
  // Each of the 2 parallel iterations takes 1000 * 1.5.
  EXPECT_EQ(r.elapsed, 1500u);
}

TEST(OmpExecutor, SynthTraversalOverheadTrackedAndSubtractable) {
  TreeBuilder b;
  b.begin_sec("s");
  b.begin_task("t").u(100).end_task().repeat_last(10);
  b.end_sec();
  const ProgramTree t = b.finish();
  ExecMode mode = ExecMode::synth_mode();
  mode.synth.access_node = 50;
  mode.synth.recursive_call = 50;
  const RunResult r = run_tree_omp(t, cores(1),
                                   zero_overhead(1, OmpSchedule::StaticCyclic),
                                   ExecMode{mode});
  // 10 iterations × (100 work + 50 access) + 50 recursive-call entry.
  EXPECT_EQ(r.elapsed, 10u * 150u + 50u);
  EXPECT_EQ(r.traversal_overhead, 10u * 50u + 50u);
  EXPECT_EQ(r.net(), 10u * 100u);
}

TEST(OmpExecutor, RealModeMemoryBoundSectionSaturates) {
  // A memory-bound section (mem fraction ~1, traffic near saturation):
  // speedup must collapse well below linear.
  TreeBuilder b;
  b.begin_sec("s");
  tree::SectionCounters c;
  c.cycles = 64'000;
  c.llc_misses = 320;  // ω=200 -> mem cycles = 64000 == T: fully memory bound
  b.counters(c);
  b.begin_task("t").u(1000).end_task().repeat_last(64);
  b.end_sec();
  const ProgramTree t = b.finish();

  machine::MachineConfig m1 = cores(1);
  m1.bandwidth.saturation_mbps = 400.0;  // solo traffic ≈ 320 MB/s: near sat
  machine::MachineConfig m8 = m1;
  m8.cores = 8;

  ExecMode mode = ExecMode::real();
  const Cycles t1 =
      run_tree_omp(t, m1, zero_overhead(1, OmpSchedule::StaticCyclic), mode)
          .elapsed;
  const Cycles t8 =
      run_tree_omp(t, m8, zero_overhead(8, OmpSchedule::StaticCyclic), mode)
          .elapsed;
  const double speedup = static_cast<double>(t1) / static_cast<double>(t8);
  EXPECT_LT(speedup, 3.0);  // 8 cores but memory-bound: far below 8
  EXPECT_GT(speedup, 1.0);
}

TEST(OmpExecutor, ComputeBoundSectionIgnoresBandwidth) {
  TreeBuilder b;
  b.begin_sec("s");
  tree::SectionCounters c;
  c.cycles = 64'000;
  c.llc_misses = 0;
  c.instructions = 64'000;
  b.counters(c);
  b.begin_task("t").u(1000).end_task().repeat_last(64);
  b.end_sec();
  const ProgramTree t = b.finish();
  machine::MachineConfig m8 = cores(8);
  m8.bandwidth.saturation_mbps = 100.0;  // tiny, but nobody uses it
  const RunResult r = run_tree_omp(
      t, m8, zero_overhead(8, OmpSchedule::StaticCyclic), ExecMode::real());
  EXPECT_EQ(r.elapsed, 8u * 1000u);
}

TEST(OmpExecutor, GuidedHandlesTriangularImbalanceWell) {
  // Increasing workload (LU-style): guided's early big chunks cover the
  // cheap iterations and its shrinking tail chunks balance the expensive
  // ones — it must beat static block and approach the ideal. (On a
  // *decreasing* workload guided's first chunk is too greedy — the classic
  // guided pathology, which the executor reproduces.)
  TreeBuilder b;
  b.begin_sec("s");
  for (int i = 1; i <= 32; ++i) {
    b.begin_task("t").u(static_cast<Cycles>(i) * 100).end_task();
  }
  b.end_sec();
  const ProgramTree t = b.finish();
  const Cycles guided =
      run_tree_omp(t, cores(4), zero_overhead(4, OmpSchedule::Guided),
                   ExecMode::real())
          .elapsed;
  const Cycles block =
      run_tree_omp(t, cores(4), zero_overhead(4, OmpSchedule::StaticBlock),
                   ExecMode::real())
          .elapsed;
  EXPECT_LT(guided, block);
  const Cycles ideal = t.total_serial_cycles() / 4;
  EXPECT_LE(guided, ideal + ideal / 4);
}

TEST(OmpExecutor, GuidedPaysDynamicDispatchPerChunk) {
  TreeBuilder b;
  b.begin_sec("s");
  b.begin_task("t").u(100).end_task().repeat_last(16);
  b.end_sec();
  const ProgramTree t = b.finish();
  OmpConfig c = zero_overhead(1, OmpSchedule::Guided);
  c.overheads.dynamic_dispatch = 10;
  const RunResult r = run_tree_omp(t, cores(1), c, ExecMode::real());
  // Single thread: chunks 16, then remaining/1 each time => 16 then done?
  // guided with t=1 takes everything in one chunk: one dispatch.
  EXPECT_EQ(r.elapsed, 16u * 100u + 10u);
}

TEST(OmpExecutor, DeterministicAcrossRuns) {
  const ProgramTree t = figure5_tree();
  const OmpConfig c = zero_overhead(3, OmpSchedule::Dynamic);
  const Cycles a = run_tree_omp(t, cores(3), c, ExecMode::real()).elapsed;
  const Cycles b2 = run_tree_omp(t, cores(3), c, ExecMode::real()).elapsed;
  EXPECT_EQ(a, b2);
}

TEST(OmpExecutor, RunSectionMatchesWholeTreeForSingleSection) {
  const ProgramTree t = figure5_tree();
  const OmpConfig c = zero_overhead(2, OmpSchedule::StaticCyclic);
  const Cycles whole = run_tree_omp(t, cores(2), c, ExecMode::real()).elapsed;
  const Cycles section =
      run_section_omp(*t.root->child(0), cores(2), c, ExecMode::real())
          .elapsed;
  EXPECT_EQ(whole, section);
}

TEST(OmpExecutor, RejectsBadInputs) {
  const ProgramTree t = figure5_tree();
  EXPECT_THROW(run_tree_omp(t, cores(2),
                            zero_overhead(0, OmpSchedule::StaticBlock),
                            ExecMode::real()),
               std::invalid_argument);
  EXPECT_THROW(run_section_omp(*t.root->child(0)->child(0), cores(2),
                               zero_overhead(2, OmpSchedule::StaticBlock),
                               ExecMode::real()),
               std::invalid_argument);
  EXPECT_THROW(run_tree_omp(ProgramTree{}, cores(2),
                            zero_overhead(2, OmpSchedule::StaticBlock),
                            ExecMode::real()),
               std::invalid_argument);
}

TEST(OmpExecutor, MoreThreadsThanCoresStillCorrectTotalWork) {
  TreeBuilder b;
  b.begin_sec("s");
  b.begin_task("t").u(1000).end_task().repeat_last(16);
  b.end_sec();
  const ProgramTree t = b.finish();
  // 8 threads on 2 cores: work conserved, elapsed ≈ 16000/2.
  const RunResult r = run_tree_omp(t, cores(2, 500),
                                   zero_overhead(8, OmpSchedule::StaticCyclic),
                                   ExecMode::real());
  EXPECT_GE(r.elapsed, 8000u);
  EXPECT_LE(r.elapsed, 8000u + 200u);  // rounding from preemption
}

}  // namespace
}  // namespace pprophet::runtime
