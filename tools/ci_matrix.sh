#!/usr/bin/env bash
# Sanitizer build matrix for CI: build the whole tree under each requested
# sanitizer and run the ctest label subsets that exercise the batched
# evaluation path and the multi-threaded engines.
#
#   tools/ci_matrix.sh [sanitizer ...]     # default: address undefined
#
# Per sanitizer (own build tree, build-ci-<san>):
#   - `ctest -L 'batched|concurrency'` — the scalar-vs-batched differential
#     harness (tests/property/test_batched_equivalence.cpp) plus every suite
#     that drives the sweep worker pool, the memo, the metrics registry and
#     the serve daemon.
#   - `ctest -L perf` — the self-checking benches. Under ctest they run in
#     smoke mode (PP_SMOKE=1, wired in bench/CMakeLists.txt): reduced grid,
#     one sample, so the bit-identity gates — pointer vs compiled vs sweep,
#     scalar vs batched engine path — still run on every PR without paying
#     for representative timings. Run the binaries directly for real
#     BENCH_*.json numbers.
#   - `ctest -L reuse -LE perf` — the reuse-distance memory model
#     (docs/MEMMODEL.md): collector exactness vs brute-force stack
#     simulation, miss-model goldens vs the cache simulator, cross-machine
#     sweeps. The collector's bit-twiddled hot path (bitmap + Fenwick
#     popcounts, slot renumbering) is exactly the kind of code sanitizers
#     earn their keep on. (-LE perf: the reuse bench already ran in the
#     perf stage.)
#   - `ctest -L advisor -LE perf` — the what-if advisor (docs/ADVISOR.md):
#     compiled-vs-pointer edit differentials, the Advice API, and the
#     action-soundness property suite.
#
# `thread` is also accepted (README documents the TSan + `-L concurrency`
# combination) but is not in the default set: TSan roughly 10x-es the
# event-engine suites, so CI runs it on a slower cadence.
#
# Independently of the requested set, the matrix always finishes with a
# thread-sanitizer stage scoped to the serve path: `ctest -L server`
# (daemon + stats-endpoint + event-log suites, whose latency histograms
# and JSONL logger are exactly the shared state TSan should watch), a
# 64-client two-transport load against the epoll reactor
# (bench_serve_throughput, which also gates response bit-identity), and a
# live daemon smoke run with --metrics and --log enabled. The `server`
# label is a small fraction of the full concurrency set, so this stays
# cheap enough for every PR.
set -euo pipefail

cd "$(dirname "$0")/.."

sans=("$@")
if [ ${#sans[@]} -eq 0 ]; then
  sans=(address undefined)
fi
jobs=$(nproc 2>/dev/null || echo 4)

build_san() {
  local san="$1" bdir="$2"
  echo "=== ${san}: configure + build (${bdir}) ==="
  cmake -B "${bdir}" -S . -DPPROPHET_SANITIZE="${san}" >/dev/null
  cmake --build "${bdir}" -j "${jobs}"
}

# Start the daemon with telemetry on, poke it with ping + stats, drain it,
# and require that the request log and metrics file came out non-empty.
serve_smoke() {
  local bdir="$1"
  local tmp
  tmp=$(mktemp -d)
  local sock="${tmp}/pp.sock"
  "${bdir}/tools/pprophet" serve --socket "${sock}" --serve-workers 2 \
      --metrics="${tmp}/metrics.json" --log "${tmp}/requests.jsonl" &
  local pid=$!
  for _ in $(seq 1 100); do
    [ -S "${sock}" ] && break
    sleep 0.1
  done
  "${bdir}/tools/pprophet" client --socket "${sock}" ping >/dev/null
  "${bdir}/tools/pprophet" stats --socket "${sock}" >/dev/null
  kill -TERM "${pid}"
  wait "${pid}"
  test -s "${tmp}/requests.jsonl"   # every request logged (sampling=1)
  test -s "${tmp}/metrics.json"     # serve histograms merged at exit
  rm -rf "${tmp}"
}

ran_thread=0
for san in "${sans[@]}"; do
  [ "${san}" = thread ] && ran_thread=1
  bdir="build-ci-${san}"
  build_san "${san}" "${bdir}"
  echo "=== ${san}: batched + concurrency labels ==="
  ctest --test-dir "${bdir}" -L 'batched|concurrency' --output-on-failure
  echo "=== ${san}: perf smoke ==="
  ctest --test-dir "${bdir}" -L perf --output-on-failure
  echo "=== ${san}: reuse model label ==="
  ctest --test-dir "${bdir}" -L reuse -LE perf --output-on-failure
  echo "=== ${san}: advisor label ==="
  # The what-if advisor (docs/ADVISOR.md): edit-machinery differentials,
  # Advice API, and the soundness property suite. The advisor walks copied
  # compiled arrays and salts digests in place — pointer-arithmetic-heavy
  # code worth a sanitizer pass. (-LE perf: bench_advisor, which carries
  # both labels, already gated soundness + memo cost in the perf stage.)
  ctest --test-dir "${bdir}" -L advisor -LE perf --output-on-failure
done

# The epoll reactor under real concurrency: both transports, dozens of
# pipeline-capable clients, the sharded store/cache, and the completion
# queue between workers and the event thread — the cross-thread traffic
# TSan exists for. The bench self-checks bit-identity and exits nonzero on
# mismatch, so this doubles as a correctness gate. (Smaller than the
# default 128-client shape: TSan's ~10x slowdown would make that a
# minutes-long stage.)
reactor_load() {
  local bdir="$1"
  (cd "${bdir}/bench" &&
   PP_CLIENTS=64 PP_REQS=4 PP_SERVE_WORKERS=4 ./bench_serve_throughput)
}

# Serve-path TSan stage. Skipped only when a full `thread` pass already ran
# above — `-L concurrency` is a superset of `-L server` there.
if [ "${ran_thread}" -eq 0 ]; then
  bdir="build-ci-thread"
  build_san thread "${bdir}"
  echo "=== thread: server label (stats endpoint, event log, daemon) ==="
  ctest --test-dir "${bdir}" -L server --output-on-failure
  echo "=== thread: reactor high-concurrency load (unix + tcp) ==="
  reactor_load "${bdir}"
  echo "=== thread: daemon smoke with --metrics + --log ==="
  serve_smoke "${bdir}"
else
  echo "=== thread: full concurrency pass already ran; load + smoke only ==="
  reactor_load "build-ci-thread"
  serve_smoke "build-ci-thread"
fi

echo "ci matrix OK: ${sans[*]} + thread(server)"
