#!/usr/bin/env bash
# Sanitizer build matrix for CI: build the whole tree under each requested
# sanitizer and run the ctest label subsets that exercise the batched
# evaluation path and the multi-threaded engines.
#
#   tools/ci_matrix.sh [sanitizer ...]     # default: address undefined
#
# Per sanitizer (own build tree, build-ci-<san>):
#   - `ctest -L 'batched|concurrency'` — the scalar-vs-batched differential
#     harness (tests/property/test_batched_equivalence.cpp) plus every suite
#     that drives the sweep worker pool, the memo, the metrics registry and
#     the serve daemon.
#   - `ctest -L perf` — the self-checking benches. Under ctest they run in
#     smoke mode (PP_SMOKE=1, wired in bench/CMakeLists.txt): reduced grid,
#     one sample, so the bit-identity gates — pointer vs compiled vs sweep,
#     scalar vs batched engine path — still run on every PR without paying
#     for representative timings. Run the binaries directly for real
#     BENCH_*.json numbers.
#
# `thread` is also accepted (README documents the TSan + `-L concurrency`
# combination) but is not in the default set: TSan roughly 10x-es the
# event-engine suites, so CI runs it on a slower cadence.
set -euo pipefail

cd "$(dirname "$0")/.."

sans=("$@")
if [ ${#sans[@]} -eq 0 ]; then
  sans=(address undefined)
fi
jobs=$(nproc 2>/dev/null || echo 4)

for san in "${sans[@]}"; do
  bdir="build-ci-${san}"
  echo "=== ${san}: configure + build (${bdir}) ==="
  cmake -B "${bdir}" -S . -DPPROPHET_SANITIZE="${san}" >/dev/null
  cmake --build "${bdir}" -j "${jobs}"
  echo "=== ${san}: batched + concurrency labels ==="
  ctest --test-dir "${bdir}" -L 'batched|concurrency' --output-on-failure
  echo "=== ${san}: perf smoke ==="
  ctest --test-dir "${bdir}" -L perf --output-on-failure
done

echo "ci matrix OK: ${sans[*]}"
