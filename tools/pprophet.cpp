// pprophet — the command-line front end. See src/cli/cli.hpp for usage.
#include <iostream>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  return pprophet::cli::main_impl(argc, argv, std::cout, std::cerr);
}
