// Quickstart: the full Parallel Prophet pipeline on a small serial program.
//
//   1. Annotate the serial code (PAR_SEC/PAR_TASK/LOCK macros).
//   2. Profile it with the interval profiler → program tree.
//   3. Compress the tree.
//   4. Predict speedups with the FF and the synthesizer for 2..12 cores
//      and all three OpenMP schedules.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "annotate/annotations.hpp"
#include "core/pipeline.hpp"
#include "core/prophet.hpp"
#include "report/experiment.hpp"
#include "trace/profiler.hpp"
#include "tree/compress.hpp"
#include "tree/serialize.hpp"
#include "util/table.hpp"

using namespace pprophet;

namespace {

// The "serial program": a loop whose iterations share a counter under a
// lock and whose work grows with the iteration index (imbalance).
void serial_program(trace::ManualClock& clock) {
  PAR_SEC_BEGIN("hot-loop");
  for (int i = 0; i < 32; ++i) {
    PAR_TASK_BEGIN("iteration");
    clock.advance(5'000 + 400ULL * static_cast<Cycles>(i));  // Compute(...)
    LOCK_BEGIN(1);
    clock.advance(1'200);  // shared-counter update
    LOCK_END(1);
    PAR_TASK_END();
  }
  PAR_SEC_END(true);
}

}  // namespace

int main() {
  std::cout << "Parallel Prophet quickstart\n===========================\n";

  // Profile the annotated serial run (deterministic virtual clock here; a
  // real program would use trace::SteadyClock).
  trace::ManualClock clock;
  trace::IntervalProfiler profiler(clock);
  {
    annotate::ScopedAnnotationTarget scope(profiler);
    serial_program(clock);
  }
  tree::ProgramTree tree = profiler.finish();
  const tree::CompressStats cs = tree::compress(tree);
  std::cout << "\nProfiled tree (after RLE compression, "
            << util::fmt_pct(cs.node_reduction(), 0) << " fewer nodes):\n"
            << tree::to_text(tree);

  // Predict.
  const CoreCount cores[] = {2, 4, 6, 8, 10, 12};
  util::Table table({"schedule", "method", "2", "4", "6", "8", "10", "12"});
  for (const auto& [label, sched] :
       {std::pair{"static,1", runtime::OmpSchedule::StaticCyclic},
        std::pair{"static", runtime::OmpSchedule::StaticBlock},
        std::pair{"dynamic,1", runtime::OmpSchedule::Dynamic}}) {
    for (const core::Method m :
         {core::Method::FastForward, core::Method::Synthesizer}) {
      core::PredictOptions o = report::paper_options(m);
      o.schedule = sched;
      std::vector<std::string> row{label, core::to_string(m)};
      for (const CoreCount t : cores) {
        row.push_back(util::fmt_f(core::predict(tree, t, o).speedup, 2));
      }
      table.add_row(std::move(row));
    }
  }
  std::cout << "\nProjected speedups:\n";
  table.print(std::cout);
  std::cout << "\nReading the result: the lock serializes ~1.2k of every\n"
               "~12k-cycle iteration, so speedup saturates around 8-10x\n"
               "regardless of schedule; static,1 beats static because the\n"
               "work grows with the iteration index.\n";

  // The same analysis through the one-object facade (profiling on the
  // instrumented virtual CPU, compression, memory model, advice):
  std::cout << "\nProphet facade, end to end:\n";
  core::Prophet prophet;
  const core::ProphetReport report = prophet.run([](vcpu::VirtualCpu& cpu) {
    PAR_SEC_BEGIN("hot-loop");
    for (int i = 0; i < 32; ++i) {
      PAR_TASK_BEGIN("iteration");
      cpu.fake_delay(5'000 + 400ULL * static_cast<Cycles>(i));
      LOCK_BEGIN(1);
      cpu.fake_delay(1'200);
      LOCK_END(1);
      PAR_TASK_END();
    }
    PAR_SEC_END(true);
  });
  report.print(std::cout);
  return 0;
}
