// Recursive FFT (the paper's Figure 1b): recursive/nested parallelism where
// the threading paradigm matters. Nested OpenMP spawns a new OS-thread team
// at every recursion level (oversubscription); Cilk's work stealing keeps a
// fixed pool. The synthesizer emulates both from the same profiled tree.
#include <iostream>

#include "core/prophet.hpp"
#include "report/experiment.hpp"
#include "util/table.hpp"
#include "workloads/ompscr.hpp"

using namespace pprophet;

int main() {
  std::cout << "Recursive FFT — paradigm comparison (Figure 1b pattern)\n"
               "=======================================================\n";

  workloads::FftParams params;
  params.n = 2048;
  params.parallel_cutoff = 128;
  const workloads::KernelRun run =
      workloads::run_fft(params, {.cache = workloads::scaled_cache()});
  std::cout << "FFT of " << params.n << " points; round-trip error "
            << run.checksum << "e-6 (must be ~0). Tree: "
            << run.tree.node_count() << " nodes of spawn/sync recursion.\n";

  const CoreCount cores[] = {2, 4, 6, 8, 10, 12};
  util::Table table({"paradigm / method", "2", "4", "6", "8", "10", "12"});
  for (const auto& [label, paradigm] :
       {std::pair{"OpenMP nested teams", core::Paradigm::OpenMP},
        std::pair{"Cilk work stealing", core::Paradigm::CilkPlus}}) {
    core::PredictOptions o = report::paper_options(core::Method::Synthesizer);
    o.paradigm = paradigm;
    std::vector<std::string> row{label};
    for (const CoreCount t : cores) {
      row.push_back(util::fmt_f(core::predict(run.tree, t, o).speedup, 2));
    }
    table.add_row(std::move(row));
  }
  {
    core::PredictOptions o = report::paper_options(core::Method::FastForward);
    std::vector<std::string> row{"FF (no OS model)"};
    for (const CoreCount t : cores) {
      row.push_back(util::fmt_f(core::predict(run.tree, t, o).speedup, 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nThe FF cannot model the runtime/OS interaction of deep\n"
               "recursion (paper SS IV-D); the synthesizer simply runs the\n"
               "synthetic program under each paradigm's scheduler.\n";
  return 0;
}
