// Annotation advisor: the semi-automatic annotation workflow of §IV-A.
//
// For each candidate loop in a small serial program:
//   1. the dependence tracker decides whether annotating it is legal
//      (parallel / reduction / serial) from the observed access stream;
//   2. legal loops get annotated + profiled;
//   3. the recommender sweeps schedules and thread counts and proposes the
//      best parallelization — closing the loop the paper describes:
//      annotate → profile → predict → decide, before writing parallel code.
#include <iostream>

#include "annotate/annotations.hpp"
#include "core/recommend.hpp"
#include "depend/dependence.hpp"
#include "report/experiment.hpp"
#include "trace/profiler.hpp"
#include "util/table.hpp"

using namespace pprophet;

namespace {

constexpr std::size_t kN = 2048;

// Loop A: independent element-wise map (parallelizable).
void loop_map(vcpu::VirtualCpu& cpu, vcpu::InstrumentedArray<double>& a,
              vcpu::InstrumentedArray<double>& b,
              depend::DependenceTracker* tr) {
  for (std::size_t i = 0; i < kN; ++i) {
    if (tr != nullptr) tr->iteration(i);
    b.set(i, a.get(i) * 1.5 + 2.0);
    cpu.compute(4);
  }
}

// Loop B: dot-product style accumulation (reduction).
void loop_dot(vcpu::VirtualCpu& cpu, vcpu::InstrumentedArray<double>& a,
              vcpu::InstrumentedArray<double>& b,
              vcpu::InstrumentedArray<double>& sum,
              depend::DependenceTracker* tr) {
  for (std::size_t i = 0; i < kN; ++i) {
    if (tr != nullptr) tr->iteration(i);
    const double prod = a.get(i) * b.get(i);
    sum.update(0, [&](double s) { return s + prod; });
    cpu.compute(3);
  }
}

// Loop C: recurrence (genuinely serial).
void loop_scan(vcpu::VirtualCpu& cpu, vcpu::InstrumentedArray<double>& a,
               depend::DependenceTracker* tr) {
  for (std::size_t i = 1; i < kN; ++i) {
    if (tr != nullptr) tr->iteration(i);
    a.set(i, a.get(i) + 0.5 * a.get(i - 1));
    cpu.compute(3);
  }
}

}  // namespace

int main() {
  std::cout << "Annotation advisor (dependence analysis + prediction)\n"
               "=====================================================\n";

  vcpu::VirtualCpu cpu;
  vcpu::InstrumentedArray<double> a(cpu, kN, 1.0);
  vcpu::InstrumentedArray<double> b(cpu, kN, 2.0);
  vcpu::InstrumentedArray<double> sum(cpu, 1, 0.0);

  // Phase 1: dependence analysis of each candidate loop.
  util::Table verdicts({"loop", "RAW", "WAR", "WAW", "reduction words",
                        "verdict"});
  depend::Verdict va, vb, vc;
  {
    depend::DependenceTracker tr(cpu);
    tr.loop_begin("map");
    loop_map(cpu, a, b, &tr);
    const depend::LoopReport r = tr.loop_end();
    va = r.verdict();
    verdicts.add_row({"A: b[i] = f(a[i])", std::to_string(r.raw),
                      std::to_string(r.war), std::to_string(r.waw),
                      std::to_string(r.reduction_words),
                      depend::to_string(va)});

    tr.loop_begin("dot");
    loop_dot(cpu, a, b, sum, &tr);
    const depend::LoopReport rd = tr.loop_end();
    vb = rd.verdict();
    verdicts.add_row({"B: sum += a[i]*b[i]", std::to_string(rd.raw),
                      std::to_string(rd.war), std::to_string(rd.waw),
                      std::to_string(rd.reduction_words),
                      depend::to_string(vb)});

    tr.loop_begin("scan");
    loop_scan(cpu, a, &tr);
    const depend::LoopReport rs = tr.loop_end();
    vc = rs.verdict();
    verdicts.add_row({"C: a[i] += a[i-1]/2", std::to_string(rs.raw),
                      std::to_string(rs.war), std::to_string(rs.waw),
                      std::to_string(rs.reduction_words),
                      depend::to_string(vc)});
  }
  verdicts.print(std::cout);

  // Phase 2: annotate the legal loops (A and B; C stays serial) and profile.
  trace::IntervalProfiler profiler(cpu.clock());
  {
    annotate::ScopedAnnotationTarget scope(profiler);
    PAR_SEC_BEGIN("map");
    for (std::size_t i = 0; i < kN; i += 64) {
      PAR_TASK_BEGIN("chunk");
      for (std::size_t j = i; j < i + 64; ++j) {
        b.set(j, a.get(j) * 1.5 + 2.0);
        cpu.compute(4);
      }
      PAR_TASK_END();
    }
    PAR_SEC_END(true);
    PAR_SEC_BEGIN("dot");
    for (std::size_t i = 0; i < kN; i += 64) {
      PAR_TASK_BEGIN("chunk");
      double local = 0.0;  // privatized partial sum (the reduction rewrite)
      for (std::size_t j = i; j < i + 64; ++j) {
        local += a.get(j) * b.get(j);
        cpu.compute(3);
      }
      LOCK_BEGIN(1);  // combine step
      sum.update(0, [&](double s) { return s + local; });
      LOCK_END(1);
      PAR_TASK_END();
    }
    PAR_SEC_END(true);
    loop_scan(cpu, a, nullptr);  // serial, unannotated
  }
  const tree::ProgramTree t = profiler.finish();

  // Phase 3: recommend a parallelization.
  core::RecommendOptions ro;
  ro.base = report::paper_options(core::Method::Synthesizer);
  ro.thread_counts = {2, 4, 8, 12};
  const core::Recommendation rec = core::recommend(t, ro);
  std::cout << "\nBest:        " << core::to_string(rec.best.paradigm) << " "
            << runtime::to_string(rec.best.schedule) << " on "
            << rec.best.threads << " threads -> "
            << util::fmt_f(rec.best.speedup, 2) << "x\n"
            << "Economical:  " << rec.economical.threads << " threads -> "
            << util::fmt_f(rec.economical.speedup, 2)
            << "x (within the 5% knee)\n"
            << "\nLoop C stays serial (true recurrence) and caps the\n"
               "whole-program speedup (Amdahl) — exactly the kind of verdict\n"
               "worth knowing before parallelizing anything.\n";
  return 0;
}
