// Memory-bound prediction (the paper's Figure 2 situation): NPB-FT's
// speedup saturates as DRAM bandwidth fills up. This example shows the
// whole memory-model pipeline explicitly:
//   counters → MPI/traffic → Ψ/Φ calibration → burden factors β_t →
//   burden-aware synthesis.
#include <iostream>

#include "core/prophet.hpp"
#include "memmodel/burden.hpp"
#include "memmodel/calibration.hpp"
#include "memmodel/classify.hpp"
#include "report/experiment.hpp"
#include "util/table.hpp"
#include "workloads/npb.hpp"

using namespace pprophet;

int main() {
  std::cout << "Memory-bound speedup prediction (NPB-FT)\n"
               "========================================\n";

  workloads::FtParams params;
  params.nx = 64;
  params.ny = 32;
  params.nz = 16;
  params.iterations = 2;
  workloads::KernelRun run =
      workloads::run_ft(params, {.cache = workloads::scaled_cache()});

  std::cout << "\nPer-section serial counters:\n";
  util::Table counters({"section", "MPI", "traffic MB/s", "class"});
  for (const auto& child : run.tree.root->children()) {
    if (child->kind() != tree::NodeKind::Sec || !child->counters()) continue;
    const auto* c = child->counters();
    counters.add_row({child->name(), util::fmt_f(c->mpi(), 4),
                      util::fmt_f(c->traffic_mbps(), 1),
                      memmodel::to_string(memmodel::classify_serial(*c, {}))});
  }
  counters.print(std::cout);

  // Calibrate Ψ/Φ on the target machine and attach burden factors.
  memmodel::CalibrationOptions copts;
  copts.machine = report::paper_machine();
  const memmodel::BurdenModel model(memmodel::calibrate(copts));
  const CoreCount cores[] = {2, 4, 6, 8, 10, 12};
  memmodel::annotate_burdens(run.tree, model, cores);

  std::cout << "\nBurden factors (per top-level section):\n";
  util::Table burdens({"section", "b2", "b4", "b6", "b8", "b10", "b12"});
  for (const auto& child : run.tree.root->children()) {
    if (child->kind() != tree::NodeKind::Sec) continue;
    std::vector<std::string> row{child->name()};
    for (const CoreCount t : cores) {
      row.push_back(util::fmt_f(child->burden(t), 2));
    }
    burdens.add_row(std::move(row));
    if (burdens.rows() >= 4) break;  // one FT iteration's worth
  }
  burdens.print(std::cout);

  std::cout << "\nSpeedups:\n";
  util::Table table({"method", "2", "4", "6", "8", "10", "12"});
  for (const auto& [label, method, memory] :
       {std::tuple{"Real (machine contention)", core::Method::GroundTruth,
                   false},
        std::tuple{"Pred (memory-blind)", core::Method::Synthesizer, false},
        std::tuple{"PredM (burden factors)", core::Method::Synthesizer,
                   true}}) {
    core::PredictOptions o = report::paper_options(method);
    o.memory_model = memory;
    std::vector<std::string> row{label};
    for (const CoreCount t : cores) {
      row.push_back(util::fmt_f(core::predict(run.tree, t, o).speedup, 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nWithout the memory model the 12-core estimate overshoots;\n"
               "the burden factors recover the saturating shape from serial\n"
               "counters alone — the paper's central claim.\n";
  return 0;
}
