// Pipeline parallelism (the paper's §VII-E extension): a video-filter-like
// serial loop whose iterations pass through decode → transform → encode →
// write stages. The pipeline emulator projects speedups per worker count,
// shows the bottleneck-stage bound, and compares against treating the same
// loop as an ordinary (unordered) parallel loop.
#include <iostream>

#include "core/prophet.hpp"
#include "emul/pipeline.hpp"
#include "report/experiment.hpp"
#include "tree/builder.hpp"
#include "util/table.hpp"

using namespace pprophet;

int main() {
  std::cout << "Pipeline-parallelism prediction (SS VII-E extension)\n"
               "====================================================\n";

  // 200 frames; the transform stage dominates.
  tree::TreeBuilder b;
  b.begin_sec("frames");
  b.begin_task("frame")
      .u(4'000)   // decode
      .u(12'000)  // transform (bottleneck)
      .u(5'000)   // encode
      .u(1'000)   // write (ordered!)
      .end_task()
      .repeat_last(200);
  b.end_sec();
  const tree::ProgramTree t = b.finish();
  const tree::Node& sec = *t.root->child(0);

  util::Table table({"workers", "pipeline speedup", "bottleneck bound",
                     "unordered-loop speedup"});
  for (const CoreCount w : {1u, 2u, 3u, 4u, 6u, 8u}) {
    emul::PipelineConfig pc;
    pc.workers = w;
    pc.stage_handoff = 100;
    const emul::PipelineResult pr = emul::emulate_pipeline(sec, pc);

    core::PredictOptions o = report::paper_options(core::Method::Synthesizer);
    const double loop_speedup = core::predict(t, w, o).speedup;

    table.add_row({std::to_string(w), util::fmt_f(pr.speedup(), 2),
                   util::fmt_f(static_cast<double>(pr.serial_cycles) /
                                   static_cast<double>(pr.bottleneck_cycles),
                               2),
                   util::fmt_f(loop_speedup, 2)});
  }
  table.print(std::cout);
  std::cout <<
      "\nIf frames were independent, the plain parallel loop scales with\n"
      "cores; with the ordered write stage, pipelining is the legal\n"
      "parallelization and its speedup is capped by the transform stage\n"
      "(bottleneck bound) no matter how many workers are added — the kind\n"
      "of answer a programmer wants *before* restructuring the code.\n";
  return 0;
}
