// LU reduction (the paper's Figure 1a): inner-loop parallelism with
// triangular imbalance. Shows why schedule choice matters and why
// Suitability's constant-overhead model collapses on this pattern.
//
// The kernel is the real LU reduction from workloads/, running its actual
// floating-point computation on the instrumented virtual CPU.
#include <iostream>

#include "core/prophet.hpp"
#include "report/experiment.hpp"
#include "util/table.hpp"
#include "workloads/ompscr.hpp"

using namespace pprophet;

int main() {
  std::cout << "LU reduction — inner-loop parallelism\n"
               "=====================================\n";

  workloads::LuParams params;
  params.n = 96;
  const workloads::KernelRun run = workloads::run_lu(params);
  std::cout << "profiled " << params.n << "x" << params.n
            << " reduction: " << run.instructions << " instructions, "
            << run.cycles << " cycles, checksum " << run.checksum << "\n"
            << "the tree has " << run.tree.node_count()
            << " nodes: one parallel section per outer k step, with the\n"
               "trip count shrinking from n-1 to 1 (the triangular shape of\n"
               "Figure 1a).\n";

  const CoreCount cores[] = {2, 4, 6, 8, 10, 12};
  util::Table table({"schedule / method", "2", "4", "6", "8", "10", "12"});
  for (const auto& [label, sched] :
       {std::pair{"static,1", runtime::OmpSchedule::StaticCyclic},
        std::pair{"static", runtime::OmpSchedule::StaticBlock},
        std::pair{"dynamic,1", runtime::OmpSchedule::Dynamic}}) {
    core::PredictOptions o = report::paper_options(core::Method::Synthesizer);
    o.schedule = sched;
    std::vector<std::string> row{std::string("SYN ") + label};
    for (const CoreCount t : cores) {
      row.push_back(util::fmt_f(core::predict(run.tree, t, o).speedup, 2));
    }
    table.add_row(std::move(row));
  }
  {
    core::PredictOptions o = report::paper_options(core::Method::Suitability);
    std::vector<std::string> row{"Suitability model"};
    for (const CoreCount t : cores) {
      row.push_back(util::fmt_f(core::predict(run.tree, t, o).speedup, 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nTakeaways: frequent small parallel regions cap the\n"
               "speedup well below linear (fork/join amortization), and the\n"
               "Suitability-style constant per-task overhead predicts\n"
               "slowdowns — the paper's diagnosis of its LU failure.\n";
  return 0;
}
