// §VI-B reproduction: program-tree compression. The paper compresses
// NPB-CG's 13.5 GB tree to 950 MB (93%) with RLE + dictionary coding and a
// 5% same-length tolerance. This bench measures node/byte reductions for
// the suite's trees, with online compression off so the raw size is real.
#include <iostream>

#include "kernel_suite.hpp"
#include "tree/compress.hpp"
#include "tree/tree_stats.hpp"
#include "util/table.hpp"
#include "workloads/test_patterns.hpp"

using namespace pprophet;

namespace {

struct NamedTree {
  std::string name;
  tree::ProgramTree tree;
};

std::vector<NamedTree> raw_trees() {
  std::vector<NamedTree> out;
  // Kernels with online compression disabled: raw one-node-per-iteration.
  const workloads::KernelConfig raw{
      .cache = workloads::scaled_cache(),
      .profiler = trace::ProfilerOptions{.online_compression = false}};
  {
    workloads::CgParams p;
    p.n = 1400;
    p.iterations = 6;
    out.push_back({"NPB-CG", workloads::run_cg(p, raw).tree});
  }
  {
    // The paper's 10 GB raw-tree case (§VI-B), in miniature.
    workloads::IsParams p;
    p.keys = 1 << 15;
    p.iterations = 4;
    out.push_back({"NPB-IS", workloads::run_is(p, raw).tree});
  }
  {
    workloads::FtParams p;
    p.nx = 64;
    p.ny = 32;
    p.nz = 16;
    p.iterations = 2;
    out.push_back({"NPB-FT", workloads::run_ft(p, raw).tree});
  }
  {
    workloads::LuParams p;
    p.n = 96;
    workloads::KernelConfig plain_raw = raw;
    plain_raw.cache = cachesim::CacheConfig{};
    out.push_back({"LU-OMP", workloads::run_lu(p, plain_raw).tree});
  }
  {
    workloads::Test1Params p;
    p.i_max = 4096;
    p.shape = workloads::WorkShape::Uniform;
    out.push_back({"Test1-uniform-4096", workloads::run_test1(p)});
  }
  {
    workloads::Test1Params p;
    p.i_max = 4096;
    p.shape = workloads::WorkShape::Random;
    p.spread = 0.9;  // hostile to lossless RLE
    out.push_back({"Test1-random-4096", workloads::run_test1(p)});
  }
  return out;
}

}  // namespace

int main() {
  report::print_header(std::cout,
                       "SS VI-B — program-tree compression (paper: CG 13.5 GB "
                       "-> 950 MB, a 93% reduction, 5% tolerance)");

  util::Table table({"tree", "nodes before", "nodes after", "bytes before",
                     "bytes after", "reduction", "packed bytes"});
  for (NamedTree& nt : raw_trees()) {
    const tree::CompressStats s = tree::compress(nt.tree);
    const tree::PackedTree packed = tree::pack(nt.tree);
    table.add_row({nt.name, util::fmt_i(static_cast<long long>(s.nodes_before)),
                   util::fmt_i(static_cast<long long>(s.nodes_after)),
                   util::fmt_bytes(s.bytes_before),
                   util::fmt_bytes(s.bytes_after),
                   util::fmt_pct(s.node_reduction()),
                   util::fmt_bytes(packed.approx_bytes())});
  }
  table.print(std::cout);

  std::cout << "\nLossy fallback (paper's 'last resort') on the hostile "
               "random tree:\n";
  util::Table lossy_table({"tolerance", "lossless nodes", "lossy nodes",
                           "max absorbed deviation"});
  for (const double tol : {0.05, 0.15, 0.30}) {
    workloads::Test1Params p;
    p.i_max = 4096;
    p.shape = workloads::WorkShape::Random;
    p.spread = 0.9;
    tree::ProgramTree lossless = workloads::run_test1(p);
    tree::ProgramTree lossy = workloads::run_test1(p);
    const auto a = tree::compress(lossless, {.tolerance = tol});
    const auto b = tree::compress(
        lossy, {.tolerance = tol, .lossy = true, .lossy_tolerance = 0.9});
    lossy_table.add_row({util::fmt_pct(tol, 0),
                         util::fmt_i(static_cast<long long>(a.nodes_after)),
                         util::fmt_i(static_cast<long long>(b.nodes_after)),
                         util::fmt_pct(b.max_absorbed_deviation)});
  }
  lossy_table.print(std::cout);
  std::cout << "\n(The paper did not need the lossy mode for its inputs; "
               "neither do we for the kernel suite.)\n";
  return 0;
}
