// Ablations of the design decisions DESIGN.md calls out:
//  A1. OS preemption on/off in the ground-truth machine — quantifies the
//      Figure-7 gap the FF suffers from (quantum -> infinity reproduces the
//      FF's 1.5 inside the machine itself).
//  A2. Burden factor (static per-section multiplier) vs the machine's
//      dynamic contention — how much accuracy the paper's cheap model
//      gives up on the memory-bound kernels.
//  A3. Compression tolerance sweep — tree size vs prediction error.
//  A4. Runtime overhead constants on/off — their share of predicted time
//      for fine-grained inner loops.
//  A5. Cilk work-stealing grain sweep — parallelism vs spawn/steal cost.
#include <iostream>

#include "kernel_suite.hpp"
#include "runtime/cilk_executor.hpp"
#include "tree/builder.hpp"
#include "tree/compress.hpp"
#include "tree/tree_stats.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/test_patterns.hpp"

using namespace pprophet;

namespace {

tree::ProgramTree figure7_tree() {
  const Cycles k = 10'000;
  tree::TreeBuilder b;
  b.begin_sec("Loop1");
  b.begin_task("i0");
  b.begin_sec("LoopA");
  b.begin_task("a0").u(10 * k).end_task();
  b.begin_task("a1").u(5 * k).end_task();
  b.end_sec();
  b.end_task();
  b.begin_task("i1");
  b.begin_sec("LoopB");
  b.begin_task("b0").u(5 * k).end_task();
  b.begin_task("b1").u(10 * k).end_task();
  b.end_sec();
  b.end_task();
  b.end_sec();
  return b.finish();
}

void ablation_preemption() {
  std::cout << "\nA1. OS preemption (Figure-7 tree, 2 cores):\n";
  const tree::ProgramTree t = figure7_tree();
  util::Table table({"machine quantum", "real speedup", "note"});
  core::PredictOptions o = report::paper_options(core::Method::GroundTruth);
  o.machine.cores = 2;
  o.machine.context_switch = 0;
  o.omp_overheads = runtime::OmpOverheads{0, 0, 0, 0, 0, 0, 0};
  for (const Cycles q : {Cycles{1'000}, Cycles{10'000}, Cycles{100'000},
                         Cycles{100'000'000}}) {
    o.machine.quantum = q;
    const double s = core::predict(t, 2, o).speedup;
    // Node lengths are 50k-100k cycles: a quantum at or beyond that is
    // effectively non-preemptive.
    table.add_row({q >= 100'000'000 ? "infinite (non-preemptive)"
                                    : std::to_string(q) + " cycles",
                   util::fmt_f(s, 2),
                   q < 50'000 ? "time-slicing recovers ~2.0"
                              : "quantum >= task length: the FF's 1.5 regime"});
  }
  table.print(std::cout);
}

void ablation_burden_vs_dynamic() {
  std::cout << "\nA2. Static burden factor vs dynamic machine contention "
               "(memory-bound kernels, 12-core prediction error vs Real):\n";
  const auto& model = bench::paper_burden_model();
  util::Table table({"kernel", "memory-blind err", "burden-factor err"});
  for (const auto& entry : bench::paper_suite(1)) {
    if (entry.name != "NPB-FT" && entry.name != "NPB-CG" &&
        entry.name != "NPB-MG") {
      continue;
    }
    const bench::KernelCurves c = bench::evaluate_kernel(entry, model);
    const util::ErrorStats blind = util::error_stats(c.pred, c.real);
    const util::ErrorStats burden = util::error_stats(c.predm, c.real);
    table.add_row({entry.name, util::fmt_pct(blind.mean_error),
                   util::fmt_pct(burden.mean_error)});
  }
  table.print(std::cout);
}

void ablation_compression_tolerance() {
  std::cout << "\nA3. Compression tolerance vs accuracy (random Test1, "
               "8-core FF prediction after lossy merging):\n";
  workloads::Test1Params p;
  p.i_max = 512;
  p.shape = workloads::WorkShape::Random;
  p.spread = 0.6;
  const tree::ProgramTree exact = workloads::run_test1(p);
  core::PredictOptions o = report::paper_options(core::Method::FastForward);
  const double base = core::predict(exact, 8, o).speedup;
  util::Table table({"tolerance", "physical nodes", "prediction", "drift"});
  for (const double tol : {0.0, 0.05, 0.15, 0.30, 0.60}) {
    tree::ProgramTree copy;
    copy.root = exact.root->clone();
    tree::compress(copy, {.tolerance = tol, .lossy = tol > 0.05,
                          .lossy_tolerance = tol});
    const auto stats = tree::compute_stats(copy);
    const double s = core::predict(copy, 8, o).speedup;
    table.add_row({util::fmt_pct(tol, 0),
                   util::fmt_i(static_cast<long long>(stats.physical_nodes)),
                   util::fmt_f(s, 3),
                   util::fmt_pct(util::relative_error(s, base))});
  }
  table.print(std::cout);
  std::cout << "(the paper's 5% tolerance: large size win, negligible "
               "drift)\n";
}

void ablation_overhead_constants() {
  std::cout << "\nA4. Runtime overhead constants (fine-grained inner loops, "
               "8 threads):\n";
  tree::TreeBuilder b;
  for (int k = 0; k < 32; ++k) {
    b.begin_sec("inner");
    for (int i = 0; i < 16; ++i) b.begin_task("t").u(3'000).end_task();
    b.end_sec();
  }
  const tree::ProgramTree t = b.finish();
  util::Table table({"overheads", "FF speedup", "SYN speedup"});
  for (const bool on : {true, false}) {
    core::PredictOptions o = report::paper_options(core::Method::FastForward);
    if (!on) {
      o.omp_overheads = runtime::OmpOverheads{0, 0, 0, 0, 0, 0, 0};
      o.synth_overheads = runtime::SynthOverheads{0, 0};
    }
    const double ff = core::predict(t, 8, o).speedup;
    o.method = core::Method::Synthesizer;
    const double syn = core::predict(t, 8, o).speedup;
    table.add_row({on ? "calibrated" : "zeroed", util::fmt_f(ff, 2),
                   util::fmt_f(syn, 2)});
  }
  table.print(std::cout);
  std::cout << "(fork/dispatch constants dominate fine-grained inner-loop\n"
               "predictions — why the paper calibrates them and why\n"
               "Suitability's coarse constants fail on LU)\n";
}

void ablation_cilk_grain() {
  std::cout << "\nA5. Cilk work-stealing grain (recursive tree, 8 workers):\n";
  tree::TreeBuilder b;
  b.begin_sec("loop");
  for (int i = 1; i <= 256; ++i) {
    b.begin_task("t").u(static_cast<Cycles>(500 + (i % 7) * 400)).end_task();
  }
  b.end_sec();
  const tree::ProgramTree t = b.finish();
  util::Table table({"grain", "speedup", "note"});
  for (const std::uint64_t grain : {1ull, 4ull, 16ull, 64ull, 256ull}) {
    core::PredictOptions o = report::paper_options(core::Method::GroundTruth);
    o.paradigm = core::Paradigm::CilkPlus;
    o.cilk_overheads.spawn = 120;
    o.cilk_overheads.steal = 1'000;
    o.cilk_overheads.loop_split = 150;
    // grain is a CilkConfig knob: thread it through a custom run.
    runtime::CilkConfig cc;
    cc.num_workers = 8;
    cc.grain = grain;
    cc.overheads = o.cilk_overheads;
    const runtime::RunResult r = runtime::run_tree_cilk(
        t, o.machine, cc, runtime::ExecMode::real());
    const double s = static_cast<double>(t.total_serial_cycles()) /
                     static_cast<double>(r.elapsed);
    table.add_row({std::to_string(grain), util::fmt_f(s, 2),
                   grain == 1      ? "max parallelism, max spawn cost"
                   : grain == 256  ? "single chunk: serial"
                                   : ""});
  }
  table.print(std::cout);
  std::cout << "(the auto grain trip/(8*workers) sits in the flat middle of\n"
               "this curve — the standard Cilk engineering trade-off)\n";
}

}  // namespace

int main() {
  report::print_header(std::cout, "Ablations of DESIGN.md decisions");
  ablation_preemption();
  ablation_burden_vs_dynamic();
  ablation_compression_tolerance();
  ablation_overhead_constants();
  ablation_cilk_grain();
  return 0;
}
