// Observability overhead check: asserts the "zero overhead when disabled"
// contract of src/obs. A FastForward prediction sweep is timed with
// instrumentation disabled and enabled, interleaved sample by sample so
// machine drift hits both arms equally; the medians must show that the
// *disabled* path costs no more than the enabled one plus noise margin.
//
// Registered as a ctest (label: observability) — exits 1 on regression.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

#include "core/prophet.hpp"
#include "obs/metrics.hpp"
#include "report/experiment.hpp"
#include "tree/compress.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "workloads/test_patterns.hpp"

using namespace pprophet;

namespace {

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

double run_once(const tree::ProgramTree& t, const core::PredictOptions& po) {
  const auto t0 = std::chrono::steady_clock::now();
  double sink = 0.0;
  for (const CoreCount n : {2u, 4u, 8u, 12u}) {
    sink += core::predict(t, n, po).speedup;
  }
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  if (sink == 0.0) std::cout << "";  // keep the work observable
  return ms;
}

}  // namespace

int main() {
  const long samples = util::env_long("PP_SAMPLES", 30);
  const long seed = util::env_long("PP_SEED", 2012);
  report::print_header(std::cout,
                       "Observability overhead — disabled instrumentation "
                       "vs enabled (PP_SAMPLES=" + std::to_string(samples) +
                           ")");

  util::Xoshiro256 rng(static_cast<std::uint64_t>(seed));
  tree::ProgramTree t = workloads::run_test2(workloads::random_test2(rng));
  tree::compress(t);

  core::PredictOptions po = report::paper_options(core::Method::FastForward);

  std::vector<double> disabled_ms, enabled_ms;
  disabled_ms.reserve(static_cast<std::size_t>(samples));
  enabled_ms.reserve(static_cast<std::size_t>(samples));
  // Warm-up: fault in code paths and register the metric names once.
  obs::set_enabled(true);
  run_once(t, po);
  obs::set_enabled(false);
  run_once(t, po);
  for (long i = 0; i < samples; ++i) {
    obs::set_enabled(false);
    disabled_ms.push_back(run_once(t, po));
    obs::set_enabled(true);
    enabled_ms.push_back(run_once(t, po));
  }
  obs::set_enabled(false);

  const double dis = median(disabled_ms);
  const double ena = median(enabled_ms);
  std::cout << "median disabled: " << dis << " ms\n"
            << "median enabled:  " << ena << " ms\n"
            << "ratio disabled/enabled: " << (ena > 0.0 ? dis / ena : 0.0)
            << "\n";

  // The disabled path must not be slower than the instrumented path beyond
  // scheduler noise. (Comparing against the *enabled* run of the same build
  // avoids cross-build baselines, which CI cannot reproduce.)
  constexpr double kNoiseFactor = 1.25;
  if (dis > ena * kNoiseFactor) {
    std::cout << "FAIL: disabled instrumentation is more than "
              << kNoiseFactor << "x the enabled run — the obs::enabled() "
              << "guard is no longer cheap\n";
    return 1;
  }
  std::cout << "OK: disabled-path overhead within noise\n";
  return 0;
}
