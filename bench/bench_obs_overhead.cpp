// Observability overhead check: asserts the "zero overhead when disabled"
// contract of src/obs. A FastForward prediction sweep is timed with
// instrumentation disabled and enabled, interleaved sample by sample so
// machine drift hits both arms equally; the medians must show that the
// *disabled* path costs no more than the enabled one plus noise margin.
// The same gate covers the histogram helper (obs::hist_record behind the
// enabled() guard) and the EventLog sampled-out path, so the serve-path
// telemetry additions cannot quietly grow a disabled-path cost.
//
// Registered as a ctest (label: observability) — exits 1 on regression.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>
#include <vector>

#include "core/prophet.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "report/experiment.hpp"
#include "tree/compress.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "workloads/test_patterns.hpp"

using namespace pprophet;

namespace {

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

double run_once(const tree::ProgramTree& t, const core::PredictOptions& po) {
  const auto t0 = std::chrono::steady_clock::now();
  double sink = 0.0;
  for (const CoreCount n : {2u, 4u, 8u, 12u}) {
    sink += core::predict(t, n, po).speedup;
  }
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  if (sink == 0.0) std::cout << "";  // keep the work observable
  return ms;
}

}  // namespace

int main() {
  const long samples = util::env_long("PP_SAMPLES", 30);
  const long seed = util::env_long("PP_SEED", 2012);
  report::print_header(std::cout,
                       "Observability overhead — disabled instrumentation "
                       "vs enabled (PP_SAMPLES=" + std::to_string(samples) +
                           ")");

  util::Xoshiro256 rng(static_cast<std::uint64_t>(seed));
  tree::ProgramTree t = workloads::run_test2(workloads::random_test2(rng));
  tree::compress(t);

  core::PredictOptions po = report::paper_options(core::Method::FastForward);

  std::vector<double> disabled_ms, enabled_ms;
  disabled_ms.reserve(static_cast<std::size_t>(samples));
  enabled_ms.reserve(static_cast<std::size_t>(samples));
  // Warm-up: fault in code paths and register the metric names once.
  obs::set_enabled(true);
  run_once(t, po);
  obs::set_enabled(false);
  run_once(t, po);
  for (long i = 0; i < samples; ++i) {
    obs::set_enabled(false);
    disabled_ms.push_back(run_once(t, po));
    obs::set_enabled(true);
    enabled_ms.push_back(run_once(t, po));
  }
  obs::set_enabled(false);

  const double dis = median(disabled_ms);
  const double ena = median(enabled_ms);
  std::cout << "median disabled: " << dis << " ms\n"
            << "median enabled:  " << ena << " ms\n"
            << "ratio disabled/enabled: " << (ena > 0.0 ? dis / ena : 0.0)
            << "\n";

  // The disabled path must not be slower than the instrumented path beyond
  // scheduler noise. (Comparing against the *enabled* run of the same build
  // avoids cross-build baselines, which CI cannot reproduce.)
  constexpr double kNoiseFactor = 1.25;
  if (dis > ena * kNoiseFactor) {
    std::cout << "FAIL: disabled instrumentation is more than "
              << kNoiseFactor << "x the enabled run — the obs::enabled() "
              << "guard is no longer cheap\n";
    return 1;
  }
  std::cout << "OK: disabled-path overhead within noise\n";

  // --- Histogram guard: obs::hist_record with the registry disabled must
  // cost no more than the recording path plus noise. Interleaved samples,
  // same discipline as the sweep gate above.
  const long iters = util::env_long("PP_HIST_ITERS", 500000);
  const auto hist_pass = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    for (long i = 0; i < iters; ++i) {
      obs::hist_record("bench.hist_us",
                       static_cast<std::uint64_t>(i) & 0xFFFF);
    }
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  obs::set_enabled(true);
  hist_pass();  // warm-up: registers the name
  obs::set_enabled(false);
  hist_pass();
  std::vector<double> hist_dis, hist_ena;
  for (int i = 0; i < 5; ++i) {
    obs::set_enabled(false);
    hist_dis.push_back(hist_pass());
    obs::set_enabled(true);
    hist_ena.push_back(hist_pass());
  }
  obs::set_enabled(false);
  const double hd = median(hist_dis);
  const double he = median(hist_ena);
  std::cout << "hist_record disabled: " << hd << " ms / " << iters
            << " calls, enabled: " << he << " ms\n";
  if (hd > he * kNoiseFactor) {
    std::cout << "FAIL: disabled hist_record is more than " << kNoiseFactor
              << "x the recording path — the enabled() guard is no longer "
              << "cheap\n";
    return 1;
  }

  // --- EventLog: a sampled-out info record does no formatting or IO, so it
  // must cost no more than actually writing records plus noise.
  const long log_iters = util::env_long("PP_LOG_ITERS", 20000);
  const auto log_pass = [&](obs::EventLog& log) {
    const auto t0 = std::chrono::steady_clock::now();
    for (long i = 0; i < log_iters; ++i) {
      obs::LogRecord rec("bench");
      rec.u64("i", static_cast<std::uint64_t>(i));
      log.write(obs::Severity::Info, rec);
    }
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  std::vector<double> log_skip, log_write;
  for (int i = 0; i < 5; ++i) {
    std::ostringstream sink_skip, sink_write;
    obs::EventLog::Options skip_all;
    skip_all.sample_every = 1u << 30;  // sample out ~everything
    obs::EventLog skipping(sink_skip, skip_all);
    obs::EventLog writing(sink_write);
    log_skip.push_back(log_pass(skipping));
    log_write.push_back(log_pass(writing));
  }
  const double ls = median(log_skip);
  const double lw = median(log_write);
  std::cout << "event_log sampled-out: " << ls << " ms / " << log_iters
            << " records, writing: " << lw << " ms\n";
  if (ls > lw * kNoiseFactor) {
    std::cout << "FAIL: a sampled-out log record costs more than "
              << kNoiseFactor << "x a written one — the sampling gate is no "
              << "longer cheap\n";
    return 1;
  }

  std::cout << "OK: histogram and event-log disabled paths within noise\n";
  return 0;
}
