// Advisor performance + soundness gate: runs the full what-if search
// (core::advise) over a Figure-12-scale workload tree and prices the same
// configuration grid un-memoized for reference. Two contracts gate the exit
// code (so this doubles as a ctest under the perf label):
//   1. soundness — the top-3 edit actions, re-applied to the source tree
//      via tree::apply_edit and re-predicted from scratch, reproduce their
//      advertised speedup_after within 1%;
//   2. cost — the whole advisor (config sweep + profile + edit search)
//      stays under 3x one un-memoized sweep of the configuration grid,
//      which is what digest-salted per-section memoization buys.
// Writes BENCH_advisor.json. PP_SMOKE=1 shrinks the grid for CI.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/advise.hpp"
#include "core/prophet.hpp"
#include "report/experiment.hpp"
#include "serve/json.hpp"
#include "tree/compile.hpp"
#include "tree/compress.hpp"
#include "tree/edit.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workloads/test_patterns.hpp"

using namespace pprophet;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  const long seed = util::env_long("PP_SEED", 2012);
  const bool smoke = util::env_long("PP_SMOKE", 0) != 0;
  const long samples = util::env_long("PP_SAMPLES", smoke ? 1 : 3);
  report::print_header(
      std::cout, "What-if advisor — edit search vs un-memoized sweeps "
                 "(PP_SEED=" + std::to_string(seed) + ", best of " +
                 std::to_string(samples) + " runs)" +
                 (smoke ? " [smoke]" : ""));

  // A multi-phase program: several Test1/Test2 instances (the paper's
  // validation workloads) spliced under one root, like a real application
  // with distinct parallel phases. Multi-section is the advisor's working
  // regime — an edit salts one section's digest and every other section
  // re-prices from the memo.
  util::Xoshiro256 rng(static_cast<std::uint64_t>(seed));
  tree::ProgramTree t;
  t.root = std::make_unique<tree::Node>(tree::NodeKind::Root, "");
  const long phases = util::env_long("PP_PHASES", smoke ? 3 : 6);
  for (long i = 0; i < phases; ++i) {
    tree::ProgramTree phase =
        i % 2 == 0 ? workloads::run_test1(workloads::random_test1(rng))
                   : workloads::run_test2(workloads::random_test2(rng));
    for (tree::NodePtr& child : phase.root->mutable_children()) {
      t.root->add_child(std::move(child));
    }
  }
  tree::compress(t);
  const tree::CompiledTree compiled = tree::CompiledTree::compile(t);

  core::AdviseOptions ao;
  ao.base = report::paper_options(core::Method::Synthesizer);
  ao.grid.thread_counts =
      smoke ? std::vector<CoreCount>{2, 4, 8} : report::paper_core_counts();
  ao.grid.chunks.clear();
  ao.sweep.workers = 1;  // pure per-eval cost; no pool parallelism

  core::Advice advice;
  double advise_ms = 0.0;
  for (long s = 0; s < samples; ++s) {
    const auto t0 = std::chrono::steady_clock::now();
    advice = core::advise(compiled, ao);
    const double ms = ms_since(t0);
    if (s == 0 || ms < advise_ms) advise_ms = ms;
  }

  // Reference: one sweep of the same configuration grid with no memo —
  // every point priced by a fresh core::predict over the compiled arrays.
  // (Cilk's scheduler is not configurable, so it collapses to one schedule
  // per thread count, exactly as the advisor enumerates.)
  std::size_t grid_points = 0;
  double unmemo_ms = 0.0;
  for (long s = 0; s < samples; ++s) {
    grid_points = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (const core::Paradigm p : ao.grid.paradigms) {
      const std::size_t nsched =
          p == core::Paradigm::CilkPlus ? 1 : ao.grid.schedules.size();
      for (std::size_t i = 0; i < nsched; ++i) {
        for (const CoreCount threads : ao.grid.thread_counts) {
          core::PredictOptions o = ao.base;
          o.method = core::Method::Synthesizer;
          o.paradigm = p;
          o.schedule = ao.grid.schedules[i];
          (void)core::predict(compiled, threads, o);
          ++grid_points;
        }
      }
    }
    const double ms = ms_since(t0);
    if (s == 0 || ms < unmemo_ms) unmemo_ms = ms;
  }

  // Soundness self-check: top-3 edit actions re-applied and re-predicted.
  std::size_t checked = 0;
  std::size_t violations = 0;
  double worst_rel_err = 0.0;
  for (const core::Action& a : advice.actions) {
    if (checked == 3) break;
    if (a.kind == core::ActionKind::ConvertConfig) continue;
    const tree::CompiledTree edited = tree::apply_edit(compiled, a.edit);
    core::PredictOptions o = ao.base;
    o.method = core::Method::Synthesizer;
    const double fresh =
        core::predict(edited, advice.target_threads, o).speedup;
    const double rel = fresh == 0.0
                           ? 1.0
                           : std::abs(a.speedup_after - fresh) / fresh;
    worst_rel_err = std::max(worst_rel_err, rel);
    if (rel > 0.01) {
      ++violations;
      std::cerr << "SOUNDNESS VIOLATION: " << a.describe() << " promised "
                << a.speedup_after << " but re-predicts to " << fresh << "\n";
    }
    ++checked;
  }

  const double hit_rate =
      advice.stats.section_lookups == 0
          ? 0.0
          : static_cast<double>(advice.stats.cache_hits) /
                static_cast<double>(advice.stats.section_lookups);
  const double sweeps_equiv = unmemo_ms > 0.0 ? advise_ms / unmemo_ms : 0.0;

  util::Table table({"stage", "wall ms", "notes"});
  table.add_row({"advise (sweep+profile+edits)", util::fmt_f(advise_ms, 2),
                 std::to_string(advice.actions.size()) + " actions"});
  table.add_row({"un-memoized config sweep", util::fmt_f(unmemo_ms, 2),
                 std::to_string(grid_points) + " points"});
  table.add_row({"advisor cost in sweeps", util::fmt_f(sweeps_equiv, 2),
                 "gate: < 3"});
  table.add_row({"memo hit rate", util::fmt_pct(hit_rate),
                 std::to_string(advice.stats.section_evals) + " evals / " +
                     std::to_string(advice.stats.section_lookups) +
                     " lookups"});
  table.print(std::cout);
  std::cout << "soundness: " << checked << " top actions re-checked, worst "
            << "relative error " << util::fmt_pct(worst_rel_err) << "\n";

  serve::JsonValue out;
  out.set("bench", serve::JsonValue("advisor"));
  out.set("seed", serve::JsonValue(static_cast<std::int64_t>(seed)));
  out.set("samples", serve::JsonValue(static_cast<std::int64_t>(samples)));
  out.set("tree_nodes",
          serve::JsonValue(static_cast<std::uint64_t>(t.node_count())));
  out.set("grid_points",
          serve::JsonValue(static_cast<std::uint64_t>(grid_points)));
  out.set("actions",
          serve::JsonValue(static_cast<std::uint64_t>(advice.actions.size())));
  out.set("advise_ms", serve::JsonValue(advise_ms));
  out.set("unmemoized_sweep_ms", serve::JsonValue(unmemo_ms));
  out.set("advise_cost_in_sweeps", serve::JsonValue(sweeps_equiv));
  out.set("memo_hit_rate", serve::JsonValue(hit_rate));
  out.set("section_lookups", serve::JsonValue(static_cast<std::uint64_t>(
                                 advice.stats.section_lookups)));
  out.set("section_evals", serve::JsonValue(static_cast<std::uint64_t>(
                               advice.stats.section_evals)));
  out.set("soundness_checked",
          serve::JsonValue(static_cast<std::uint64_t>(checked)));
  out.set("soundness_worst_rel_err", serve::JsonValue(worst_rel_err));
  out.set("sound", serve::JsonValue(violations == 0));
  std::ofstream f("BENCH_advisor.json");
  f << serve::json_dump(out) << "\n";
  f.close();
  std::cout << "wrote BENCH_advisor.json\n";

  if (violations > 0) {
    std::cerr << "FAIL: " << violations
              << " of the top actions missed their promised speedup by >1%\n";
    return 1;
  }
  if (sweeps_equiv >= 3.0) {
    std::cerr << "FAIL: advisor cost " << sweeps_equiv
              << " un-memoized sweeps (gate: < 3) — the edit-search memo "
              << "has regressed\n";
    return 1;
  }
  return 0;
}
