// Table I reproduction: the capability matrix of dynamic speedup-prediction
// tools. Each cell is *measured* here: a probe workload exercising the
// pattern is predicted by each emulator and graded against the ground-truth
// machine: "Good" (within 20%), "Limited" (within 50%), "Poor" otherwise.
// The Kismet column is our critical-path-bound model of that tool
// (emul/kismet.hpp); Cilkview is out of scope — it requires parallelized
// input code, the opposite of this tool family's premise.
#include <functional>
#include <iostream>

#include "emul/kismet.hpp"
#include "report/experiment.hpp"
#include "tree/builder.hpp"
#include "util/table.hpp"
#include "workloads/test_patterns.hpp"

using namespace pprophet;

namespace {

struct Probe {
  const char* pattern;
  core::Paradigm paradigm;
  std::function<tree::ProgramTree()> make;
};

const char* grade(double pred, double real) {
  const double err = std::abs(pred - real) / real;
  if (err <= 0.20) return "Good";
  if (err <= 0.50) return "Limited";
  return "Poor";
}

tree::ProgramTree simple_lock_tree() {
  tree::TreeBuilder b;
  b.begin_sec("s");
  for (int i = 0; i < 24; ++i) {
    b.begin_task("t").u(8'000).l(1, 2'000).u(6'000).end_task();
  }
  b.end_sec();
  return b.finish();
}

tree::ProgramTree imbalance_tree() {
  workloads::Test1Params p;
  p.shape = workloads::WorkShape::Triangular;
  p.spread = 0.9;
  p.i_max = 48;
  p.lock1_prob = 0.0;
  return workloads::run_test1(p);
}

tree::ProgramTree inner_loop_tree() {
  tree::TreeBuilder b;
  for (int k = 0; k < 24; ++k) {
    b.begin_sec("inner");
    for (int i = 0; i < 12; ++i) b.begin_task("t").u(4'000).end_task();
    b.end_sec();
  }
  return b.finish();
}

tree::ProgramTree recursive_tree() {
  tree::TreeBuilder b;
  std::function<void(int)> rec = [&](int depth) {
    if (depth == 0) {
      b.u(20'000);
      return;
    }
    b.begin_sec("rec");
    for (int i = 0; i < 2; ++i) {
      b.begin_task("half");
      rec(depth - 1);
      b.end_task();
    }
    b.end_sec();
    b.u(2'000);
  };
  b.begin_sec("top");
  b.begin_task("root");
  rec(6);
  b.end_task();
  b.end_sec();
  return b.finish();
}

}  // namespace

int main() {
  report::print_header(std::cout,
                       "Table I — measured capability matrix (grades vs the "
                       "ground-truth machine at 8 cores)");

  const Probe probes[] = {
      {"Simple loops/locks", core::Paradigm::OpenMP, simple_lock_tree},
      {"Imbalance", core::Paradigm::OpenMP, imbalance_tree},
      {"Inner-loop", core::Paradigm::OpenMP, inner_loop_tree},
      {"Recursive", core::Paradigm::CilkPlus, recursive_tree},
  };
  const core::Method methods[] = {core::Method::FastForward,
                                  core::Method::Synthesizer,
                                  core::Method::Suitability};

  util::Table table({"pattern", "FF (ours)", "SYN (ours)", "Suit (model)",
                     "Kismet (model)", "real speedup"});
  for (const Probe& probe : probes) {
    const tree::ProgramTree t = probe.make();
    core::PredictOptions o = report::paper_options(core::Method::GroundTruth);
    o.paradigm = probe.paradigm;
    const double real = core::predict(t, 8, o).speedup;
    std::vector<std::string> row{probe.pattern};
    for (const core::Method m : methods) {
      o.method = m;
      const double pred = core::predict(t, 8, o).speedup;
      row.push_back(std::string(grade(pred, real)) + " (" +
                    util::fmt_f(pred, 2) + ")");
    }
    // Kismet: a critical-path upper bound, no annotations consumed.
    const double kismet = emul::analyze_kismet(t).bound(8);
    row.push_back(std::string(grade(kismet, real)) + " (" +
                  util::fmt_f(kismet, 2) + ")");
    row.push_back(util::fmt_f(real, 2));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout <<
      "\nPaper's Table I (for reference): Cilkview needs parallelized code;\n"
      "Kismet: upper bound only, limited beyond simple loops, huge\n"
      "overhead; Suitability: limited on imbalance/inner/recursive;\n"
      "Parallel Prophet: good on all four, with memory modelled for\n"
      "contention (see bench_table4). Our Kismet column is the described\n"
      "critical-path bound: it never under-estimates, so it grades poorly\n"
      "wherever overheads or schedules matter.\n";
  return 0;
}
