// EPCC-style runtime-overhead study (§VII-B): the paper calibrates its FF
// overhead constants with the Bull/Dimakopoulos microbenchmarks [6, 8] but
// then *observes* that "the overhead of OpenMP constructs ... is also
// dependent on the trip count of a parallelized loop and the degree of
// workload imbalance" — one reason the synthesizer beats the FF.
//
// This bench measures the same effect on our runtime model with the
// difference method: emulate an empty-ish parallel loop, subtract the ideal
// work/P time, and report the residual overhead per region across trip
// counts, schedules, and imbalance. The FF's *constant* model is printed
// alongside for contrast.
#include <iostream>

#include "emul/ff.hpp"
#include "report/experiment.hpp"
#include "tree/builder.hpp"
#include "util/table.hpp"
#include "workloads/test_patterns.hpp"

using namespace pprophet;

namespace {

tree::ProgramTree loop_tree(std::uint64_t trips, Cycles len,
                            bool imbalanced) {
  tree::TreeBuilder b;
  util::Xoshiro256 rng(5);
  b.begin_sec("probe");
  for (std::uint64_t i = 0; i < trips; ++i) {
    const Cycles work =
        imbalanced ? workloads::compute_overhead(
                         i, trips, len, workloads::WorkShape::Random, 0.8, rng)
                   : len;
    b.begin_task("t").u(work).end_task();
  }
  b.end_sec();
  return b.finish();
}

Cycles measured_overhead(const tree::ProgramTree& t, CoreCount threads,
                         runtime::OmpSchedule sched) {
  core::PredictOptions o = report::paper_options(core::Method::GroundTruth);
  o.schedule = sched;
  const Cycles parallel = core::predict(t, threads, o).parallel_cycles;
  const Cycles ideal = t.total_serial_cycles() / threads;
  return parallel > ideal ? parallel - ideal : 0;
}

}  // namespace

int main() {
  report::print_header(std::cout,
                       "EPCC-style overhead study (§VII-B): region overhead "
                       "vs trip count, schedule, imbalance");
  const CoreCount threads = 8;
  const runtime::OmpOverheads constants{};
  const Cycles ff_constant =
      constants.fork_base + constants.fork_per_thread * (threads - 1) +
      constants.join_barrier;
  std::cout << "FF's constant model for one region at " << threads
            << " threads: " << ff_constant << " cycles (+ dispatch/iter)\n\n";

  util::Table table({"trip count", "schedule", "balanced ovh", "imbalanced ovh"});
  for (const std::uint64_t trips : {8ull, 32ull, 128ull, 512ull}) {
    for (const auto& [name, sched] :
         {std::pair{"static,1", runtime::OmpSchedule::StaticCyclic},
          std::pair{"dynamic,1", runtime::OmpSchedule::Dynamic}}) {
      const tree::ProgramTree balanced = loop_tree(trips, 2'000, false);
      const tree::ProgramTree skewed = loop_tree(trips, 2'000, true);
      table.add_row({std::to_string(trips), name,
                     std::to_string(measured_overhead(balanced, threads, sched)),
                     std::to_string(measured_overhead(skewed, threads, sched))});
    }
  }
  table.print(std::cout);
  std::cout <<
      "\nObservations (matching the paper's): overhead grows with the trip\n"
      "count (per-iteration dispatch), differs by schedule, and imbalance\n"
      "adds a non-constant tail-wait component the FF cannot express as a\n"
      "constant — hence the synthesizer.\n";
  return 0;
}
