// Table III reproduction: FF vs synthesizer comparison — per-estimate
// emulation cost (wall time here, where the paper reports slowdown factors
// on its machine), accuracy against ground truth, and the regimes where
// each wins. Run on a batch of Test1 (flat) and Test2 (nested) samples.
#include <chrono>
#include <iostream>

#include "core/sweep.hpp"
#include "report/experiment.hpp"
#include "util/env.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/test_patterns.hpp"

using namespace pprophet;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  const long samples = util::env_long("PP_SAMPLES", 30);
  report::print_header(std::cout,
                       "Table III — FF vs synthesizer: accuracy and "
                       "per-estimate cost (" + std::to_string(samples) +
                       " samples each; PP_SAMPLES to change)");

  for (const bool nested : {false, true}) {
    util::Xoshiro256 rng(nested ? 77 : 33);
    std::vector<tree::ProgramTree> trees;
    std::vector<double> real;
    core::PredictOptions o = report::paper_options(core::Method::GroundTruth);
    for (long s = 0; s < samples; ++s) {
      trees.push_back(nested
                          ? workloads::run_test2(workloads::random_test2(rng))
                          : workloads::run_test1(workloads::random_test1(rng)));
      real.push_back(core::predict(trees.back(), 8, o).speedup);
    }

    util::Table table({"emulator", "avg err", "max err", "sec/estimate",
                       "paper note"});
    for (const core::Method m : {core::Method::FastForward,
                                 core::Method::Synthesizer}) {
      // Per-tree estimates run through the batched sweep engine — a
      // one-point sweep is bit-identical to core::predict (see
      // tests/core/test_sweep.cpp), so the timing it reports is the
      // engine's own per-estimate cost.
      core::SweepPoint point;
      point.method = m;
      point.threads = 8;
      std::vector<double> pred;
      const auto t0 = std::chrono::steady_clock::now();
      for (const auto& t : trees) {
        pred.push_back(core::sweep_points(t, {&point, 1}, o)
                           .cells.front()
                           .estimate.speedup);
      }
      const double secs = seconds_since(t0) / static_cast<double>(samples);
      const util::ErrorStats es = util::error_stats(pred, real);
      table.add_row(
          {core::to_string(m), util::fmt_pct(es.mean_error),
           util::fmt_pct(es.max_error), util::fmt_f(secs * 1000, 2) + " ms",
           m == core::Method::FastForward
               ? "analytical; 1.1-3x slowdown; weak on nested"
               : "runs on the machine model; 1.1-2x; very accurate"});
    }
    std::cout << "\n--- " << (nested ? "Test2 (nested parallelism)"
                                     : "Test1 (single-level loops)")
              << " ---\n";
    table.print(std::cout);
  }
  std::cout <<
      "\nTable III qualitative checks: the FF is cheaper per estimate; the\n"
      "synthesizer is the accurate one on nested parallelism; both handle\n"
      "flat loops well (paper SS IV-E, Table III).\n";
  return 0;
}
