// Figure 5 reproduction: the fast-forwarding worked example — a loop with
// three unequal iterations and one lock, parallelized on a dual core under
// the three OpenMP schedules. The paper reports emulated times
// 1150/1250/950 (+ε) and speedups ≈ 1.30 / 1.20 / 1.58.
#include <iostream>

#include "emul/ff.hpp"
#include "machine/timeline.hpp"
#include "runtime/omp_executor.hpp"
#include "report/experiment.hpp"
#include "tree/builder.hpp"
#include "util/table.hpp"

using namespace pprophet;

namespace {

tree::ProgramTree figure5_tree() {
  tree::TreeBuilder b;
  b.begin_sec("loop");
  b.begin_task("I0").u(150).l(1, 450).u(50).end_task();
  b.begin_task("I1").u(100).l(1, 300).u(200).end_task();
  b.begin_task("I2").u(150).l(1, 50).u(50).end_task();
  b.end_sec();
  return b.finish();
}

}  // namespace

int main() {
  report::print_header(std::cout,
                       "Figure 5 — FF emulation of three schedules "
                       "(I0=650, I1=600, I2=250 cycles; one lock; 2 cores)");
  const tree::ProgramTree t = figure5_tree();

  struct Case {
    const char* name;
    runtime::OmpSchedule sched;
    Cycles paper_cycles;
    double paper_speedup;
  };
  const Case cases[] = {
      {"schedule(static,1)", runtime::OmpSchedule::StaticCyclic, 1150, 1.30},
      {"schedule(static)", runtime::OmpSchedule::StaticBlock, 1250, 1.20},
      {"schedule(dynamic,1)", runtime::OmpSchedule::Dynamic, 950, 1.58},
  };

  util::Table table({"case", "emulated cycles", "speedup", "paper cycles",
                     "paper speedup"});
  for (const Case& c : cases) {
    emul::FfConfig cfg;
    cfg.num_threads = 2;
    cfg.schedule = c.sched;
    cfg.chunk = 1;
    cfg.overheads = runtime::OmpOverheads{0, 0, 0, 0, 0, 0, 0};  // ε = 0
    const emul::FfResult r = emul::emulate_ff(t, cfg);
    table.add_row({c.name, std::to_string(r.parallel_cycles),
                   util::fmt_f(r.speedup(), 2),
                   std::to_string(c.paper_cycles) + "+eps",
                   util::fmt_f(c.paper_speedup, 2)});
  }
  table.print(std::cout);
  std::cout << "\nSerial length: 1500 cycles. With zero parallel overhead\n"
               "(eps = 0) the emulated times match the paper's exactly.\n";

  // Redraw the paper's Gantt illustration from actual machine runs.
  std::cout << "\nExecution timelines (machine runs of the same cases):\n";
  for (const Case& c : cases) {
    machine::MachineConfig mcfg;
    mcfg.cores = 2;
    mcfg.context_switch = 0;
    runtime::OmpConfig ocfg;
    ocfg.num_threads = 2;
    ocfg.schedule = c.sched;
    ocfg.chunk = 1;
    ocfg.overheads = runtime::OmpOverheads{0, 0, 0, 0, 0, 0, 0};
    machine::Timeline tl;
    runtime::ExecMode mode = runtime::ExecMode::real();
    mode.timeline = &tl;
    runtime::run_tree_omp(t, mcfg, ocfg, mode);
    std::cout << "\n" << c.name << ":\n";
    tl.print(std::cout);
  }
  return 0;
}
