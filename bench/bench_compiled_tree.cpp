// Compiled-tree benchmark: the Figure-12/Table-3 grid (methods × paradigms
// × schedules × chunks × memory-model × core counts) evaluated two ways —
// the pointer-tree reference path, composed per §IV-E from
// predict_section_cycles(const tree::Node&), and the flat tree::CompiledTree
// path (compile once, then core::predict over the arrays for every point).
// Every cell is checked bit-identical; the binary exits nonzero on any
// mismatch, so it doubles as a ctest (label: perf). A second comparison
// times the sweep engine's scalar vs batched evaluation paths
// (core::EnginePath) over the FF+Suitability slice — the methods with
// batched evaluators — and gates their bit-identity too. Writes the
// measured wall times and speedups to BENCH_compiled.json. PP_SMOKE=1
// shrinks the grid for fast CI identity runs.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/prophet.hpp"
#include "core/sweep.hpp"
#include "memmodel/burden.hpp"
#include "memmodel/calibration.hpp"
#include "report/experiment.hpp"
#include "serve/json.hpp"
#include "tree/compile.hpp"
#include "tree/compress.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workloads/test_patterns.hpp"

using namespace pprophet;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// §IV-E over the pointer tree, the pre-CompiledTree reference: top-level U
/// lengths plus every top-level Sec's emulated duration once per repetition.
core::SpeedupEstimate predict_pointer(const tree::ProgramTree& t,
                                      CoreCount threads,
                                      const core::PredictOptions& o) {
  core::SpeedupEstimate est;
  est.threads = threads;
  est.serial_cycles = core::serial_cycles_of(t);
  Cycles parallel = 0;
  for (const tree::NodePtr& c : t.top_level()) {
    if (c->kind() == tree::NodeKind::U) {
      parallel += c->length() * c->repeat();
    } else if (c->kind() == tree::NodeKind::Sec) {
      parallel += core::predict_section_cycles(*c, threads, o) * c->repeat();
    }
  }
  est.parallel_cycles = parallel == 0 ? 1 : parallel;
  est.speedup = static_cast<double>(est.serial_cycles) /
                static_cast<double>(est.parallel_cycles);
  return est;
}

}  // namespace

int main() {
  const long seed = util::env_long("PP_SEED", 2012);
  // PP_SMOKE=1: single-sample reduced grid so the perf label stays a fast
  // identity gate under sanitizers (tools/ci_matrix.sh); timings still land
  // in BENCH_compiled.json but are not representative.
  const bool smoke = util::env_long("PP_SMOKE", 0) != 0;
  const long samples = util::env_long("PP_SAMPLES", smoke ? 1 : 3);
  report::print_header(
      std::cout, "Compiled tree — flat-array predict vs pointer-tree walk "
                 "(PP_SEED=" + std::to_string(seed) + ", best of " +
                 std::to_string(samples) + " runs)" +
                 (smoke ? " [smoke]" : ""));

  util::Xoshiro256 rng(static_cast<std::uint64_t>(seed));
  tree::ProgramTree t = workloads::run_test2(workloads::random_test2(rng));
  tree::compress(t);
  // Annotate burdens up front so the memory-model half of the grid reads
  // the same β_t tables through both paths.
  {
    memmodel::CalibrationOptions copts;
    copts.machine = report::paper_options(core::Method::Synthesizer).machine;
    const memmodel::BurdenModel model(memmodel::calibrate(copts));
    memmodel::annotate_burdens(t, model, report::paper_core_counts());
  }

  core::SweepGrid grid;
  grid.methods = {core::Method::FastForward, core::Method::Synthesizer,
                  core::Method::Suitability, core::Method::GroundTruth};
  grid.paradigms = {core::Paradigm::OpenMP, core::Paradigm::CilkPlus};
  grid.schedules = {runtime::OmpSchedule::StaticCyclic,
                    runtime::OmpSchedule::StaticBlock,
                    runtime::OmpSchedule::Dynamic};
  grid.chunks = {1, 4};
  grid.thread_counts = report::paper_core_counts();
  grid.memory_models = {false, true};
  grid.base = report::paper_options(core::Method::Synthesizer);
  if (smoke) {
    grid.chunks = {1};
    grid.thread_counts = {2, 8};
  }
  const std::vector<core::SweepPoint> points = grid.points();
  std::cout << "tree: " << t.node_count() << " nodes, grid: " << points.size()
            << " points\n";

  const auto options_at = [&](const core::SweepPoint& p) {
    core::PredictOptions o = grid.base;
    o.method = p.method;
    o.paradigm = p.paradigm;
    o.schedule = p.schedule;
    o.chunk = p.chunk;
    o.memory_model = p.memory_model;
    return o;
  };

  // Times are reported whole-grid and per method: the machine-replay
  // methods (SYN/Real) spend their cycles in the vCPU simulation either
  // way, so the flat-array win concentrates in the analytical emulators.
  const auto method_index = [](core::Method m) {
    return static_cast<std::size_t>(m);
  };
  const std::size_t kMethods = 4;

  // Pointer-tree reference: walk the Node graph for every point.
  std::vector<core::SpeedupEstimate> reference;
  double pointer_ms = 0.0;
  std::vector<double> pointer_method_ms(kMethods, 0.0);
  for (long s = 0; s < samples; ++s) {
    std::vector<core::SpeedupEstimate> run;
    run.reserve(points.size());
    std::vector<double> per_method(kMethods, 0.0);
    const auto t0 = std::chrono::steady_clock::now();
    for (const core::SweepPoint& p : points) {
      const auto tp = std::chrono::steady_clock::now();
      run.push_back(predict_pointer(t, p.threads, options_at(p)));
      per_method[method_index(p.method)] += ms_since(tp);
    }
    const double ms = ms_since(t0);
    if (s == 0 || ms < pointer_ms) {
      pointer_ms = ms;
      pointer_method_ms = per_method;
    }
    reference = std::move(run);
  }

  // Compiled path: one compilation, then flat-array predicts.
  double compile_ms = 0.0;
  double compiled_ms = 0.0;
  std::vector<double> compiled_method_ms(kMethods, 0.0);
  std::vector<core::SpeedupEstimate> compiled_cells;
  for (long s = 0; s < samples; ++s) {
    const auto tc = std::chrono::steady_clock::now();
    const tree::CompiledTree ct = tree::CompiledTree::compile(t);
    const double cms = ms_since(tc);
    if (s == 0 || cms < compile_ms) compile_ms = cms;

    std::vector<core::SpeedupEstimate> run;
    run.reserve(points.size());
    std::vector<double> per_method(kMethods, 0.0);
    const auto t0 = std::chrono::steady_clock::now();
    for (const core::SweepPoint& p : points) {
      const auto tp = std::chrono::steady_clock::now();
      run.push_back(core::predict(ct, p.threads, options_at(p)));
      per_method[method_index(p.method)] += ms_since(tp);
    }
    const double ms = ms_since(t0);
    if (s == 0 || ms < compiled_ms) {
      compiled_ms = ms;
      compiled_method_ms = per_method;
    }
    compiled_cells = std::move(run);
  }

  // The production fig12/table3 path: compile once inside core::sweep and
  // share the arrays across all points, with per-section memoization on
  // top. This is what the serve daemon and the figure benches actually run.
  double sweep_ms = 0.0;
  std::vector<core::SpeedupEstimate> sweep_cells;
  for (long s = 0; s < samples; ++s) {
    core::SweepOptions sopts;
    sopts.workers = 1;
    const auto t0 = std::chrono::steady_clock::now();
    const core::SweepResult res = core::sweep(t, grid, sopts);
    const double ms = ms_since(t0);
    if (s == 0 || ms < sweep_ms) sweep_ms = ms;
    sweep_cells.clear();
    sweep_cells.reserve(res.cells.size());
    for (const auto& c : res.cells) sweep_cells.push_back(c.estimate);
  }

  // Batched vs scalar engine path, measured where the batched evaluators
  // exist: FF and Suitability sub-problems. SYN/Real replay the vCPU
  // identically on both paths, so including them would only dilute the
  // number. One worker, so this is a pure per-eval cost comparison; the
  // identity of the two runs is part of the exit gate below.
  core::SweepGrid egrid = grid;
  egrid.methods = {core::Method::FastForward, core::Method::Suitability};
  const std::vector<core::SweepPoint> epoints = egrid.points();
  double scalar_ms = 0.0;
  double batched_ms = 0.0;
  std::size_t batched_blocks = 0;
  std::size_t batched_pts = 0;
  std::vector<core::SpeedupEstimate> scalar_cells, batched_cells;
  for (long s = 0; s < samples; ++s) {
    core::SweepOptions sopts;
    sopts.workers = 1;

    egrid.base.engine_path = core::EnginePath::Scalar;
    auto t0 = std::chrono::steady_clock::now();
    const core::SweepResult rs = core::sweep(t, egrid, sopts);
    const double sms = ms_since(t0);
    if (s == 0 || sms < scalar_ms) scalar_ms = sms;

    egrid.base.engine_path = core::EnginePath::Batched;
    t0 = std::chrono::steady_clock::now();
    const core::SweepResult rb = core::sweep(t, egrid, sopts);
    const double bms = ms_since(t0);
    if (s == 0 || bms < batched_ms) batched_ms = bms;

    batched_blocks = rb.stats.batched_blocks;
    batched_pts = rb.stats.batched_points;
    scalar_cells.clear();
    batched_cells.clear();
    for (const auto& c : rs.cells) scalar_cells.push_back(c.estimate);
    for (const auto& c : rb.cells) batched_cells.push_back(c.estimate);
  }
  std::size_t engine_mismatches = 0;
  for (std::size_t i = 0; i < epoints.size(); ++i) {
    const auto& a = scalar_cells[i];
    const auto& b = batched_cells[i];
    if (a.speedup != b.speedup || a.parallel_cycles != b.parallel_cycles ||
        a.serial_cycles != b.serial_cycles) {
      ++engine_mismatches;
    }
  }

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& a = reference[i];
    const auto& b = compiled_cells[i];
    const auto& c = sweep_cells[i];
    if (a.speedup != b.speedup || a.parallel_cycles != b.parallel_cycles ||
        a.serial_cycles != b.serial_cycles || b.speedup != c.speedup ||
        b.parallel_cycles != c.parallel_cycles ||
        b.serial_cycles != c.serial_cycles) {
      ++mismatches;
    }
  }

  const double speedup = compiled_ms > 0.0 ? pointer_ms / compiled_ms : 0.0;
  util::Table table({"grid slice", "pointer ms", "compiled ms", "speedup"});
  table.add_row({"whole grid", util::fmt_f(pointer_ms, 2),
                 util::fmt_f(compiled_ms, 2), util::fmt_f(speedup, 2) + "x"});
  for (const core::Method m :
       {core::Method::FastForward, core::Method::Synthesizer,
        core::Method::Suitability, core::Method::GroundTruth}) {
    const double pm = pointer_method_ms[method_index(m)];
    const double cm = compiled_method_ms[method_index(m)];
    table.add_row({std::string("method ") + core::to_string(m),
                   util::fmt_f(pm, 2), util::fmt_f(cm, 2),
                   util::fmt_f(cm > 0.0 ? pm / cm : 0.0, 2) + "x"});
  }
  const double sweep_speedup = sweep_ms > 0.0 ? pointer_ms / sweep_ms : 0.0;
  table.add_row({"compiled + memoized sweep", util::fmt_f(pointer_ms, 2),
                 util::fmt_f(sweep_ms, 2),
                 util::fmt_f(sweep_speedup, 2) + "x"});
  table.add_row({"compile (once)", "-", util::fmt_f(compile_ms, 2), "-"});
  table.print(std::cout);
  std::cout << "all " << points.size() << " cells bit-identical to pointer "
            << "path: " << (mismatches == 0 ? "yes" : "NO — BUG") << "\n";

  const double batched_speedup =
      batched_ms > 0.0 ? scalar_ms / batched_ms : 0.0;
  util::Table etable({"engine path (FF+Suit grid)", "wall ms", "speedup"});
  etable.add_row({"scalar", util::fmt_f(scalar_ms, 2), "1.00x"});
  etable.add_row({"batched (" + std::to_string(batched_blocks) + " blocks, " +
                      std::to_string(batched_pts) + " points)",
                  util::fmt_f(batched_ms, 2),
                  util::fmt_f(batched_speedup, 2) + "x"});
  etable.print(std::cout);
  std::cout << "all " << epoints.size() << " cells bit-identical between "
            << "engine paths: " << (engine_mismatches == 0 ? "yes" : "NO — BUG")
            << "\n";

  serve::JsonValue out;
  out.set("bench", serve::JsonValue("compiled_tree"));
  out.set("seed", serve::JsonValue(static_cast<std::int64_t>(seed)));
  out.set("samples", serve::JsonValue(static_cast<std::int64_t>(samples)));
  out.set("tree_nodes", serve::JsonValue(
                            static_cast<std::uint64_t>(t.node_count())));
  out.set("grid_points", serve::JsonValue(
                             static_cast<std::uint64_t>(points.size())));
  out.set("pointer_ms", serve::JsonValue(pointer_ms));
  out.set("compiled_ms", serve::JsonValue(compiled_ms));
  out.set("compile_once_ms", serve::JsonValue(compile_ms));
  out.set("speedup", serve::JsonValue(speedup));
  out.set("sweep_ms", serve::JsonValue(sweep_ms));
  out.set("sweep_speedup", serve::JsonValue(sweep_speedup));
  out.set("emul_grid_points", serve::JsonValue(
                                  static_cast<std::uint64_t>(epoints.size())));
  out.set("sweep_scalar_ms", serve::JsonValue(scalar_ms));
  out.set("sweep_batched_ms", serve::JsonValue(batched_ms));
  out.set("batched_speedup", serve::JsonValue(batched_speedup));
  out.set("batched_blocks", serve::JsonValue(
                                static_cast<std::uint64_t>(batched_blocks)));
  out.set("batched_points", serve::JsonValue(
                                static_cast<std::uint64_t>(batched_pts)));
  {
    serve::JsonValue::Object per_method;
    for (const core::Method m :
         {core::Method::FastForward, core::Method::Synthesizer,
          core::Method::Suitability, core::Method::GroundTruth}) {
      serve::JsonValue row;
      row.set("pointer_ms",
              serve::JsonValue(pointer_method_ms[method_index(m)]));
      row.set("compiled_ms",
              serve::JsonValue(compiled_method_ms[method_index(m)]));
      per_method.emplace(core::to_string(m), std::move(row));
    }
    out.set("per_method", serve::JsonValue(std::move(per_method)));
  }
  out.set("identical", serve::JsonValue(mismatches == 0));
  out.set("engine_identical", serve::JsonValue(engine_mismatches == 0));
  std::ofstream f("BENCH_compiled.json");
  f << serve::json_dump(out) << "\n";
  f.close();
  std::cout << "wrote BENCH_compiled.json\n";

  if (mismatches > 0) {
    std::cerr << "FAIL: " << mismatches
              << " cells differed between the pointer and compiled paths\n";
    return 1;
  }
  if (engine_mismatches > 0) {
    std::cerr << "FAIL: " << engine_mismatches
              << " cells differed between the scalar and batched engines\n";
    return 1;
  }
  return 0;
}
