// Load bench for the prediction service (docs/SERVE.md): an in-process
// daemon serving both transports (unix-domain socket + 127.0.0.1 TCP), hit
// by PP_CLIENTS concurrent client threads per transport, each firing
// PP_REQS requests drawn from a small sweep-request mix so the result cache
// sees both cold misses and steady-state hits. Reports throughput and
// latency percentiles per transport, writes BENCH_serve.json (including the
// server-side per-stage breakdown and the frozen thread-per-connection
// baseline this epoll reactor replaced), and self-checks every response
// against an in-process core::sweep over the same tree — exiting nonzero on
// any mismatch, so it doubles as a ctest.
//
// Client-observed latency uses obs::Histogram — one per client thread,
// merged at the end (the same mergeable-quantile substrate the serve path
// records into) — instead of collecting and sorting every sample.
//
// Env knobs: PP_CLIENTS (default 128 per transport), PP_REQS (default 8 per
// client), PP_SERVE_WORKERS (default 4), PP_SEED. PP_SMOKE=1 shrinks the
// fleet to 16 clients for `ctest -L perf`; the bit-identity and
// stage-reconciliation gates still run in full.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/sweep.hpp"
#include "obs/histogram.hpp"
#include "report/experiment.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "tree/binary.hpp"
#include "tree/compress.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workloads/test_patterns.hpp"

using namespace pprophet;

namespace {

// The thread-per-connection implementation this reactor replaced, measured
// on this harness at 128 clients / 4 serve workers / 8 requests per client.
// Kept in BENCH_serve.json so the regression is visible without digging
// through git history; only comparable when the run uses the same shape.
constexpr double kBaselineRps = 5755.9;
constexpr double kBaselineP50Ms = 14.272;
constexpr double kBaselineP90Ms = 18.560;
constexpr double kBaselineP99Ms = 55.040;
constexpr long kBaselineClients = 128;
constexpr long kBaselineWorkers = 4;
constexpr long kBaselineReqs = 8;

struct RequestKind {
  const char* label;
  std::vector<core::Method> methods;
  std::vector<runtime::OmpSchedule> schedules;
  std::vector<CoreCount> threads;
};

serve::JsonValue build_request(const RequestKind& kind,
                               const std::string& key) {
  serve::JsonValue req;
  req.set("op", serve::JsonValue("sweep"));
  req.set("key", serve::JsonValue(key));
  serve::JsonValue::Array methods, schedules, threads;
  for (const auto m : kind.methods) {
    methods.emplace_back(serve::wire_name(m));
  }
  for (const auto s : kind.schedules) {
    schedules.emplace_back(serve::wire_name(s));
  }
  for (const auto t : kind.threads) {
    threads.emplace_back(static_cast<std::uint64_t>(t));
  }
  req.set("methods", serve::JsonValue(std::move(methods)));
  req.set("schedules", serve::JsonValue(std::move(schedules)));
  req.set("threads", serve::JsonValue(std::move(threads)));
  req.set("cores", serve::JsonValue(std::uint64_t{12}));
  return req;
}

core::SweepResult reference_sweep(const tree::ProgramTree& tree,
                                  const RequestKind& kind) {
  core::SweepGrid grid;
  grid.methods = kind.methods;
  grid.paradigms = {core::Paradigm::OpenMP};
  grid.schedules = kind.schedules;
  grid.chunks = {1};
  grid.thread_counts = kind.threads;
  grid.memory_models = {false};
  grid.base = report::paper_options(kind.methods.front());
  grid.base.machine.cores = 12;
  return core::sweep(tree, grid);
}

bool matches(const serve::JsonValue& response,
             const core::SweepResult& expected) {
  const serve::JsonValue* ok = response.find("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) return false;
  const serve::JsonValue::Array& cells =
      response.at("result").at("cells").as_array();
  if (cells.size() != expected.cells.size()) return false;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& want = expected.cells[i].estimate;
    if (cells[i].at("parallel_cycles").as_u64() != want.parallel_cycles ||
        cells[i].at("serial_cycles").as_u64() != want.serial_cycles ||
        cells[i].at("speedup").as_double() != want.speedup) {
      return false;
    }
  }
  return true;
}

double us_to_ms(std::uint64_t us) { return static_cast<double>(us) / 1000.0; }

/// Quantile summary of a server-side stage histogram as a JSON object
/// (counts + microsecond quantiles), for the per-stage section of
/// BENCH_serve.json.
serve::JsonValue stage_json(const obs::HistogramSnapshot& h) {
  serve::JsonValue v;
  v.set("count", serve::JsonValue(h.count));
  v.set("total_us", serve::JsonValue(h.total));
  v.set("p50_us", serve::JsonValue(h.quantile(0.50)));
  v.set("p90_us", serve::JsonValue(h.quantile(0.90)));
  v.set("p99_us", serve::JsonValue(h.quantile(0.99)));
  v.set("max_us", serve::JsonValue(h.max));
  return v;
}

/// One full load round against `endpoint` (unix path or HOST:PORT — the
/// client dispatches on shape): its own server instance so stats, cache
/// state, and the stage-reconciliation gate are per-transport.
struct TransportResult {
  std::string name;
  double rps = 0.0;
  double p50_ms = 0.0, p90_ms = 0.0, p99_ms = 0.0, max_ms = 0.0;
  std::uint64_t requests = 0;
  long mismatches = 0;
  serve::ServerStatsSnapshot stats;
  serve::JsonValue stage_obj;
  bool stages_reconcile = false;
  bool uploads_deduped = false;
};

TransportResult run_transport(const char* name, bool use_tcp, long clients,
                              long reqs, long workers,
                              const std::string& pptb,
                              const std::vector<RequestKind>& kinds,
                              const std::vector<core::SweepResult>& expected) {
  serve::ServerConfig cfg;
  cfg.socket_path = std::string("/tmp/pp_bench_serve_") + name + ".sock";
  if (use_tcp) cfg.listen_tcp = "127.0.0.1:0";
  cfg.workers = static_cast<std::size_t>(workers);
  cfg.sweep_workers = 1;
  // Headroom above the client count: this bench measures latency under
  // load, not the shedding tiers (test_reactor.cpp covers those).
  cfg.queue_limit = static_cast<std::size_t>(clients) * 4;
  serve::Server server(cfg);
  server.start();
  const std::string endpoint =
      use_tcp ? "127.0.0.1:" + std::to_string(server.tcp_port())
              : cfg.socket_path;

  std::vector<obs::Histogram> local_hist(static_cast<std::size_t>(clients));
  std::vector<long> local_bad(static_cast<std::size_t>(clients), 0);
  const auto bench_start = std::chrono::steady_clock::now();

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(clients));
  for (long c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      serve::Client client;
      client.connect_endpoint(endpoint);
      const std::string key = client.upload(pptb);
      obs::Histogram& hist = local_hist[static_cast<std::size_t>(c)];
      long bad = 0;
      for (long r = 0; r < reqs; ++r) {
        const std::size_t k = static_cast<std::size_t>(c + r) % kinds.size();
        const auto t0 = std::chrono::steady_clock::now();
        const serve::JsonValue resp =
            client.call(build_request(kinds[k], key));
        hist.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
        if (!matches(resp, expected[k])) ++bad;
      }
      local_bad[static_cast<std::size_t>(c)] = bad;
    });
  }
  for (auto& th : pool) th.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();

  TransportResult out;
  out.name = name;
  // Snapshot stats only after stop(): a client can read its last response
  // bytes before the reactor thread finishes recording that request's stage
  // histograms, and a mid-record snapshot breaks the exact stage
  // reconciliation gated below. stop() joins the reactor and workers.
  server.stop();
  out.stats = server.stats();

  obs::Histogram merged;
  for (long c = 0; c < clients; ++c) {
    merged.merge(local_hist[static_cast<std::size_t>(c)]);
    out.mismatches += local_bad[static_cast<std::size_t>(c)];
  }
  const obs::HistogramSnapshot lat = merged.snapshot();
  out.requests = lat.count;
  out.p50_ms = us_to_ms(lat.quantile(0.50));
  out.p90_ms = us_to_ms(lat.quantile(0.90));
  out.p99_ms = us_to_ms(lat.quantile(0.99));
  out.max_ms = us_to_ms(lat.max);
  out.rps = wall_s > 0.0 ? static_cast<double>(lat.count) / wall_s : 0.0;
  out.uploads_deduped = out.stats.stored_trees == 1;

  std::uint64_t stage_sum = 0, total_sum = 0;
  for (const auto& [hname, h] : out.stats.metrics.histograms) {
    if (hname.rfind("serve.", 0) == 0 && h.count > 0) {
      out.stage_obj.set(hname, stage_json(h));
    }
    if (hname == "serve.total_us") total_sum = h.total;
    if (hname == "serve.read_us" || hname == "serve.queue_wait_us" ||
        hname == "serve.compute_us" || hname == "serve.write_us" ||
        hname == "serve.other_us") {
      stage_sum += h.total;
    }
  }
  out.stages_reconcile = stage_sum == total_sum;
  return out;
}

serve::JsonValue transport_json(const TransportResult& t) {
  serve::JsonValue v;
  v.set("requests", serve::JsonValue(t.requests));
  v.set("throughput_rps", serve::JsonValue(t.rps));
  v.set("p50_ms", serve::JsonValue(t.p50_ms));
  v.set("p90_ms", serve::JsonValue(t.p90_ms));
  v.set("p99_ms", serve::JsonValue(t.p99_ms));
  v.set("max_ms", serve::JsonValue(t.max_ms));
  v.set("cache_hits", serve::JsonValue(t.stats.cache.hits));
  v.set("cache_misses", serve::JsonValue(t.stats.cache.misses));
  v.set("cache_hit_rate", serve::JsonValue(t.stats.cache.hit_rate()));
  v.set("uploads_deduped", serve::JsonValue(t.uploads_deduped));
  v.set("mismatches", serve::JsonValue(t.mismatches));
  v.set("stages", serve::JsonValue(t.stage_obj));
  return v;
}

}  // namespace

int main() {
  const bool smoke = util::env_long("PP_SMOKE", 0) != 0;
  const long clients = util::env_long("PP_CLIENTS", smoke ? 16 : 128);
  const long reqs = util::env_long("PP_REQS", smoke ? 4 : 8);
  const long workers = util::env_long("PP_SERVE_WORKERS", 4);
  const long seed = util::env_long("PP_SEED", 2012);
  report::print_header(
      std::cout, "Prediction service throughput (PP_CLIENTS=" +
                     std::to_string(clients) + " per transport, PP_REQS=" +
                     std::to_string(reqs) + " per client)");

  util::Xoshiro256 rng(static_cast<std::uint64_t>(seed));
  tree::ProgramTree t = workloads::run_test2(workloads::random_test2(rng));
  tree::compress(t);
  const std::string pptb = tree::to_binary(tree::pack(t));
  std::cout << "tree: " << t.node_count() << " nodes, upload "
            << pptb.size() << " bytes\n";

  // A small request mix: distinct cache keys, so the steady state is a
  // blend of hits (repeat kinds) and misses (first touch per kind).
  const std::vector<RequestKind> kinds = {
      {"syn-static1", {core::Method::Synthesizer},
       {runtime::OmpSchedule::StaticCyclic}, {2, 4, 8, 12}},
      {"ff-dynamic", {core::Method::FastForward},
       {runtime::OmpSchedule::Dynamic}, {2, 4, 8}},
      {"multi-method", {core::Method::FastForward, core::Method::Synthesizer},
       {runtime::OmpSchedule::StaticCyclic, runtime::OmpSchedule::StaticBlock},
       {2, 4, 6, 8, 10, 12}},
      {"suit-guided", {core::Method::Suitability},
       {runtime::OmpSchedule::Guided}, {4, 8}},
  };
  const tree::ProgramTree reference = tree::unpack(tree::from_binary(pptb));
  std::vector<core::SweepResult> expected;
  expected.reserve(kinds.size());
  for (const RequestKind& kind : kinds) {
    expected.push_back(reference_sweep(reference, kind));
  }

  const TransportResult runs[2] = {
      run_transport("unix", false, clients, reqs, workers, pptb, kinds,
                    expected),
      run_transport("tcp", true, clients, reqs, workers, pptb, kinds,
                    expected),
  };

  const bool comparable = clients == kBaselineClients &&
                          workers == kBaselineWorkers && reqs == kBaselineReqs;
  util::Table table({"transport", "requests", "req/s", "p50 ms", "p90 ms",
                     "p99 ms", "cache hit", "mismatches"});
  for (const TransportResult& r : runs) {
    table.add_row({r.name, std::to_string(r.requests), util::fmt_f(r.rps, 1),
                   util::fmt_f(r.p50_ms, 3), util::fmt_f(r.p90_ms, 3),
                   util::fmt_f(r.p99_ms, 3),
                   util::fmt_pct(r.stats.cache.hit_rate()),
                   std::to_string(r.mismatches)});
  }
  if (comparable) {
    table.add_row({"(baseline thread-per-conn, unix)",
                   std::to_string(kBaselineClients * kBaselineReqs),
                   util::fmt_f(kBaselineRps, 1),
                   util::fmt_f(kBaselineP50Ms, 3),
                   util::fmt_f(kBaselineP90Ms, 3),
                   util::fmt_f(kBaselineP99Ms, 3), "-", "-"});
  }
  table.print(std::cout);
  if (comparable) {
    std::cout << "reactor vs thread-per-conn baseline (unix): "
              << util::fmt_f(runs[0].rps / kBaselineRps, 2) << "x req/s, p99 "
              << util::fmt_f(runs[0].p99_ms, 3) << " ms vs "
              << util::fmt_f(kBaselineP99Ms, 3) << " ms\n";
  }

  serve::JsonValue out;
  out.set("bench", serve::JsonValue("serve_throughput"));
  out.set("clients_per_transport", serve::JsonValue(clients));
  out.set("requests_per_client", serve::JsonValue(reqs));
  out.set("serve_workers", serve::JsonValue(workers));
  out.set("smoke", serve::JsonValue(smoke));
  for (const TransportResult& r : runs) {
    out.set(r.name, transport_json(r));
  }
  serve::JsonValue baseline;
  baseline.set("implementation",
               serve::JsonValue("thread-per-connection (pre-reactor)"));
  baseline.set("clients", serve::JsonValue(kBaselineClients));
  baseline.set("serve_workers", serve::JsonValue(kBaselineWorkers));
  baseline.set("requests_per_client", serve::JsonValue(kBaselineReqs));
  baseline.set("throughput_rps", serve::JsonValue(kBaselineRps));
  baseline.set("p50_ms", serve::JsonValue(kBaselineP50Ms));
  baseline.set("p90_ms", serve::JsonValue(kBaselineP90Ms));
  baseline.set("p99_ms", serve::JsonValue(kBaselineP99Ms));
  baseline.set("comparable_to_this_run", serve::JsonValue(comparable));
  out.set("baseline_thread_per_conn", std::move(baseline));
  std::ofstream f("BENCH_serve.json");
  f << serve::json_dump(out) << "\n";
  f.close();
  std::cout << "wrote BENCH_serve.json\n";

  int rc = 0;
  for (const TransportResult& r : runs) {
    if (r.mismatches > 0) {
      std::cerr << "FAIL: " << r.name << ": " << r.mismatches
                << " responses differed from in-process core::sweep\n";
      rc = 1;
    }
    if (!r.uploads_deduped) {
      std::cerr << "FAIL: " << r.name << ": " << r.stats.stored_trees
                << " stored trees after identical uploads (expected 1)\n";
      rc = 1;
    }
    if (r.stats.cache.hits == 0) {
      std::cerr << "FAIL: " << r.name
                << ": result cache never hit under a repeating mix\n";
      rc = 1;
    }
    // The serve-path stage histograms must reconcile exactly: every
    // finished request's stages partition its total (request_trace.hpp).
    if (!r.stages_reconcile) {
      std::cerr << "FAIL: " << r.name
                << ": stage totals do not reconcile with serve.total_us\n";
      rc = 1;
    }
  }
  if (rc == 0) {
    std::cout << "OK: all responses on both transports bit-identical to "
                 "in-process sweep; stage totals reconcile\n";
  }
  return rc;
}
