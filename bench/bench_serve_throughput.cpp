// Load bench for the prediction service (docs/SERVE.md): an in-process
// daemon on a unix-domain socket, PP_CLIENTS concurrent client threads each
// firing PP_REQS requests drawn from a small sweep-request mix, so the
// result cache sees both cold misses and steady-state hits. Reports latency
// percentiles and throughput, writes BENCH_serve.json (including the
// server-side per-stage breakdown from its metrics registry), and
// self-checks every response against an in-process core::sweep over the
// same tree — exiting nonzero on any mismatch, so it doubles as a ctest.
//
// Client-observed latency uses obs::Histogram — one per client thread,
// merged at the end (the same mergeable-quantile substrate the serve path
// records into) — instead of collecting and sorting every sample.
//
// Env knobs: PP_CLIENTS (default 4), PP_REQS (default 25 per client),
// PP_SERVE_WORKERS (default 2), PP_SEED.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/sweep.hpp"
#include "obs/histogram.hpp"
#include "report/experiment.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "tree/binary.hpp"
#include "tree/compress.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workloads/test_patterns.hpp"

using namespace pprophet;

namespace {

struct RequestKind {
  const char* label;
  std::vector<core::Method> methods;
  std::vector<runtime::OmpSchedule> schedules;
  std::vector<CoreCount> threads;
};

serve::JsonValue build_request(const RequestKind& kind,
                               const std::string& key) {
  serve::JsonValue req;
  req.set("op", serve::JsonValue("sweep"));
  req.set("key", serve::JsonValue(key));
  serve::JsonValue::Array methods, schedules, threads;
  for (const auto m : kind.methods) {
    methods.emplace_back(serve::wire_name(m));
  }
  for (const auto s : kind.schedules) {
    schedules.emplace_back(serve::wire_name(s));
  }
  for (const auto t : kind.threads) {
    threads.emplace_back(static_cast<std::uint64_t>(t));
  }
  req.set("methods", serve::JsonValue(std::move(methods)));
  req.set("schedules", serve::JsonValue(std::move(schedules)));
  req.set("threads", serve::JsonValue(std::move(threads)));
  req.set("cores", serve::JsonValue(std::uint64_t{12}));
  return req;
}

core::SweepResult reference_sweep(const tree::ProgramTree& tree,
                                  const RequestKind& kind) {
  core::SweepGrid grid;
  grid.methods = kind.methods;
  grid.paradigms = {core::Paradigm::OpenMP};
  grid.schedules = kind.schedules;
  grid.chunks = {1};
  grid.thread_counts = kind.threads;
  grid.memory_models = {false};
  grid.base = report::paper_options(kind.methods.front());
  grid.base.machine.cores = 12;
  return core::sweep(tree, grid);
}

bool matches(const serve::JsonValue& response,
             const core::SweepResult& expected) {
  const serve::JsonValue* ok = response.find("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) return false;
  const serve::JsonValue::Array& cells =
      response.at("result").at("cells").as_array();
  if (cells.size() != expected.cells.size()) return false;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& want = expected.cells[i].estimate;
    if (cells[i].at("parallel_cycles").as_u64() != want.parallel_cycles ||
        cells[i].at("serial_cycles").as_u64() != want.serial_cycles ||
        cells[i].at("speedup").as_double() != want.speedup) {
      return false;
    }
  }
  return true;
}

double us_to_ms(std::uint64_t us) { return static_cast<double>(us) / 1000.0; }

/// Quantile summary of a server-side stage histogram as a JSON object
/// (counts + microsecond quantiles), for the per-stage section of
/// BENCH_serve.json.
serve::JsonValue stage_json(const obs::HistogramSnapshot& h) {
  serve::JsonValue v;
  v.set("count", serve::JsonValue(h.count));
  v.set("total_us", serve::JsonValue(h.total));
  v.set("p50_us", serve::JsonValue(h.quantile(0.50)));
  v.set("p90_us", serve::JsonValue(h.quantile(0.90)));
  v.set("p99_us", serve::JsonValue(h.quantile(0.99)));
  v.set("max_us", serve::JsonValue(h.max));
  return v;
}

}  // namespace

int main() {
  const long clients = util::env_long("PP_CLIENTS", 4);
  const long reqs = util::env_long("PP_REQS", 25);
  const long workers = util::env_long("PP_SERVE_WORKERS", 2);
  const long seed = util::env_long("PP_SEED", 2012);
  report::print_header(
      std::cout, "Prediction service throughput (PP_CLIENTS=" +
                     std::to_string(clients) + ", PP_REQS=" +
                     std::to_string(reqs) + " per client)");

  util::Xoshiro256 rng(static_cast<std::uint64_t>(seed));
  tree::ProgramTree t = workloads::run_test2(workloads::random_test2(rng));
  tree::compress(t);
  const std::string pptb = tree::to_binary(tree::pack(t));
  std::cout << "tree: " << t.node_count() << " nodes, upload "
            << pptb.size() << " bytes\n";

  // A small request mix: distinct cache keys, so the steady state is a
  // blend of hits (repeat kinds) and misses (first touch per kind).
  const std::vector<RequestKind> kinds = {
      {"syn-static1", {core::Method::Synthesizer},
       {runtime::OmpSchedule::StaticCyclic}, {2, 4, 8, 12}},
      {"ff-dynamic", {core::Method::FastForward},
       {runtime::OmpSchedule::Dynamic}, {2, 4, 8}},
      {"multi-method", {core::Method::FastForward, core::Method::Synthesizer},
       {runtime::OmpSchedule::StaticCyclic, runtime::OmpSchedule::StaticBlock},
       {2, 4, 6, 8, 10, 12}},
      {"suit-guided", {core::Method::Suitability},
       {runtime::OmpSchedule::Guided}, {4, 8}},
  };
  const tree::ProgramTree reference = tree::unpack(tree::from_binary(pptb));
  std::vector<core::SweepResult> expected;
  expected.reserve(kinds.size());
  for (const RequestKind& kind : kinds) {
    expected.push_back(reference_sweep(reference, kind));
  }

  serve::ServerConfig cfg;
  cfg.socket_path = "/tmp/pp_bench_serve.sock";
  cfg.workers = static_cast<std::size_t>(workers);
  cfg.sweep_workers = 1;
  cfg.queue_limit = 256;
  serve::Server server(cfg);
  server.start();

  // One latency histogram per client thread, merged after the join — the
  // cross-thread merge identity tests/obs/test_histogram.cpp asserts.
  std::vector<obs::Histogram> local_hist(static_cast<std::size_t>(clients));
  std::vector<long> local_bad(static_cast<std::size_t>(clients), 0);
  const auto bench_start = std::chrono::steady_clock::now();

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(clients));
  for (long c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      serve::Client client;
      client.connect(cfg.socket_path);
      const std::string key = client.upload(pptb);
      obs::Histogram& hist = local_hist[static_cast<std::size_t>(c)];
      long bad = 0;
      for (long r = 0; r < reqs; ++r) {
        const std::size_t k =
            static_cast<std::size_t>(c + r) % kinds.size();
        const auto t0 = std::chrono::steady_clock::now();
        const serve::JsonValue resp =
            client.call(build_request(kinds[k], key));
        hist.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
        if (!matches(resp, expected[k])) ++bad;
      }
      local_bad[static_cast<std::size_t>(c)] = bad;
    });
  }
  for (auto& th : pool) th.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();
  const serve::ServerStatsSnapshot stats = server.stats();
  server.stop();

  obs::Histogram merged;
  long mismatches = 0;
  for (long c = 0; c < clients; ++c) {
    merged.merge(local_hist[static_cast<std::size_t>(c)]);
    mismatches += local_bad[static_cast<std::size_t>(c)];
  }
  const obs::HistogramSnapshot lat = merged.snapshot();
  const double p50 = us_to_ms(lat.quantile(0.50));
  const double p90 = us_to_ms(lat.quantile(0.90));
  const double p99 = us_to_ms(lat.quantile(0.99));
  const double throughput =
      wall_s > 0.0 ? static_cast<double>(lat.count) / wall_s : 0.0;

  util::Table table({"metric", "value"});
  table.add_row({"requests", std::to_string(lat.count)});
  table.add_row({"throughput req/s", util::fmt_f(throughput, 1)});
  table.add_row({"p50 ms", util::fmt_f(p50, 3)});
  table.add_row({"p90 ms", util::fmt_f(p90, 3)});
  table.add_row({"p99 ms", util::fmt_f(p99, 3)});
  table.add_row({"cache hit rate", util::fmt_pct(stats.cache.hit_rate())});
  table.add_row({"mismatches", std::to_string(mismatches)});
  table.print(std::cout);

  // Server-side per-stage breakdown (the same histograms `pprophet stats`
  // renders), so BENCH_serve.json records where the latency went, not just
  // how much there was.
  util::Table stages({"stage", "count", "p50 us", "p90 us", "p99 us"});
  serve::JsonValue stage_obj;
  for (const auto& [name, h] : stats.metrics.histograms) {
    if (name.rfind("serve.", 0) != 0 || h.count == 0) continue;
    stages.add_row({name, std::to_string(h.count),
                    std::to_string(h.quantile(0.50)),
                    std::to_string(h.quantile(0.90)),
                    std::to_string(h.quantile(0.99))});
    stage_obj.set(name, stage_json(h));
  }
  stages.print(std::cout);

  serve::JsonValue out;
  out.set("bench", serve::JsonValue("serve_throughput"));
  out.set("clients", serve::JsonValue(clients));
  out.set("requests_per_client", serve::JsonValue(reqs));
  out.set("serve_workers", serve::JsonValue(workers));
  out.set("requests", serve::JsonValue(lat.count));
  out.set("throughput_rps", serve::JsonValue(throughput));
  out.set("p50_ms", serve::JsonValue(p50));
  out.set("p90_ms", serve::JsonValue(p90));
  out.set("p99_ms", serve::JsonValue(p99));
  out.set("max_ms", serve::JsonValue(us_to_ms(lat.max)));
  out.set("wall_s", serve::JsonValue(wall_s));
  out.set("stages", std::move(stage_obj));
  out.set("cache_hits", serve::JsonValue(stats.cache.hits));
  out.set("cache_misses", serve::JsonValue(stats.cache.misses));
  out.set("cache_hit_rate", serve::JsonValue(stats.cache.hit_rate()));
  out.set("uploads_deduped",
          serve::JsonValue(stats.stored_trees == 1));
  out.set("mismatches", serve::JsonValue(mismatches));
  std::ofstream f("BENCH_serve.json");
  f << serve::json_dump(out) << "\n";
  f.close();
  std::cout << "wrote BENCH_serve.json\n";

  if (mismatches > 0) {
    std::cerr << "FAIL: " << mismatches
              << " responses differed from in-process core::sweep\n";
    return 1;
  }
  if (stats.stored_trees != 1) {
    std::cerr << "FAIL: " << stats.stored_trees
              << " stored trees after identical uploads (expected 1)\n";
    return 1;
  }
  if (stats.cache.hits == 0) {
    std::cerr << "FAIL: result cache never hit under a repeating mix\n";
    return 1;
  }
  // The serve-path stage histograms must reconcile exactly: every finished
  // request's stages partition its total (request_trace.hpp).
  std::uint64_t stage_sum = 0, total_sum = 0;
  for (const auto& [name, h] : stats.metrics.histograms) {
    if (name == "serve.total_us") total_sum = h.total;
    if (name == "serve.read_us" || name == "serve.queue_wait_us" ||
        name == "serve.compute_us" || name == "serve.write_us" ||
        name == "serve.other_us") {
      stage_sum += h.total;
    }
  }
  if (stage_sum != total_sum) {
    std::cerr << "FAIL: stage totals (" << stage_sum
              << " us) do not reconcile with serve.total_us (" << total_sum
              << " us)\n";
    return 1;
  }
  std::cout << "OK: all responses bit-identical to in-process sweep; "
               "stage totals reconcile\n";
  return 0;
}
