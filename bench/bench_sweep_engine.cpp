// Sweep-engine benchmark: a Figure-12-sized what-if grid (methods ×
// paradigms × schedules × chunks × memory-model × core counts) evaluated
// several ways — naive per-point core::predict, then the memoizing sweep
// engine on one worker and on a worker pool, each on both the scalar and
// the batched evaluation path (core::EnginePath) — with bit-identity
// checked cell by cell. The memoized win comes from canonical sub-keys: the FF
// never reads the paradigm, Cilk never reads the schedule/chunk, Suitability
// pins everything but the thread count, GroundTruth ignores the memory
// model, and schedule(static) ignores the chunk.
#include <chrono>
#include <iostream>
#include <thread>

#include "core/sweep.hpp"
#include "report/experiment.hpp"
#include "tree/compress.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workloads/test_patterns.hpp"

using namespace pprophet;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  const long seed = util::env_long("PP_SEED", 2012);
  // PP_SMOKE=1: reduced grid so the perf label stays a fast identity gate
  // under sanitizer builds (tools/ci_matrix.sh).
  const bool smoke = util::env_long("PP_SMOKE", 0) != 0;
  report::print_header(std::cout,
                       "Sweep engine — batched grid vs naive per-point "
                       "predict (PP_SEED=" + std::to_string(seed) + ")" +
                       (smoke ? " [smoke]" : ""));

  util::Xoshiro256 rng(static_cast<std::uint64_t>(seed));
  tree::ProgramTree t = workloads::run_test2(workloads::random_test2(rng));
  tree::compress(t);

  core::SweepGrid grid;
  grid.methods = {core::Method::FastForward, core::Method::Synthesizer,
                  core::Method::Suitability, core::Method::GroundTruth};
  grid.paradigms = {core::Paradigm::OpenMP, core::Paradigm::CilkPlus};
  grid.schedules = {runtime::OmpSchedule::StaticCyclic,
                    runtime::OmpSchedule::StaticBlock,
                    runtime::OmpSchedule::Dynamic};
  grid.chunks = {1, 4};
  grid.thread_counts = report::paper_core_counts();
  grid.memory_models = {false, true};
  grid.base = report::paper_options(core::Method::Synthesizer);
  if (smoke) {
    grid.chunks = {1};
    grid.thread_counts = {2, 8};
  }
  const std::vector<core::SweepPoint> points = grid.points();
  std::cout << "tree: " << t.node_count() << " nodes, grid: "
            << points.size() << " points\n";

  // Naive baseline: one sequential core::predict per grid point.
  std::vector<core::SpeedupEstimate> naive;
  naive.reserve(points.size());
  const auto t0 = std::chrono::steady_clock::now();
  for (const core::SweepPoint& p : points) {
    core::PredictOptions o = grid.base;
    o.method = p.method;
    o.paradigm = p.paradigm;
    o.schedule = p.schedule;
    o.chunk = p.chunk;
    o.memory_model = p.memory_model;
    naive.push_back(core::predict(t, p.threads, o));
  }
  const double naive_ms = ms_since(t0);

  util::Table table({"evaluator", "wall ms", "speedup vs naive",
                     "section evals", "memo hit rate"});
  table.add_row({"naive predict loop", util::fmt_f(naive_ms, 1), "1.00x",
                 std::to_string(points.size()) + " full trees", "-"});

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  bool all_identical = true;
  // Both engine paths at both worker counts: every run must reproduce the
  // naive cells bit for bit (core/sweep.hpp determinism contract), and the
  // scalar rows give the batched rows their like-for-like baseline.
  for (const core::EnginePath path :
       {core::EnginePath::Scalar, core::EnginePath::Batched}) {
    grid.base.engine_path = path;
    for (const std::size_t workers : {std::size_t{1}, std::size_t{hw}}) {
      core::SweepOptions sopts;
      sopts.workers = workers;
      const core::SweepResult res = core::sweep(t, grid, sopts);
      for (std::size_t i = 0; i < points.size(); ++i) {
        const auto& a = naive[i];
        const auto& b = res.cells[i].estimate;
        if (a.speedup != b.speedup || a.parallel_cycles != b.parallel_cycles ||
            a.serial_cycles != b.serial_cycles) {
          all_identical = false;
        }
      }
      table.add_row({std::string(core::to_string(path)) + " sweep, " +
                         std::to_string(res.stats.workers) + " worker" +
                         (res.stats.workers == 1 ? "" : "s"),
                     util::fmt_f(res.stats.wall_ms, 1),
                     util::fmt_f(naive_ms / res.stats.wall_ms, 2) + "x",
                     std::to_string(res.stats.section_evals) + " of " +
                         std::to_string(res.stats.section_lookups),
                     util::fmt_pct(res.stats.hit_rate())});
      if (workers == hw && hw == 1) break;  // avoid a duplicate row
    }
  }
  table.print(std::cout);
  std::cout << "all " << points.size() << " cells bit-identical to naive: "
            << (all_identical ? "yes" : "NO — BUG") << "\n";
  return all_identical ? 0 : 1;
}
