// §VII-D reproduction (google-benchmark): profiling overhead. The paper
// reports a 1.1–10× tracer slowdown per estimate and decomposes the
// synthesizer's total time. Here we measure, with the *real* clock:
//   - the raw annotated program (macros inert),
//   - interval profiling on top,
//   - profiling with online compression,
//   - tree emulation cost per estimate (FF vs synthesizer),
// so the ratios between these rows are the paper's slowdown factors.
#include <benchmark/benchmark.h>

#include "annotate/annotations.hpp"
#include "core/prophet.hpp"
#include "report/experiment.hpp"
#include "trace/profiler.hpp"
#include "workloads/test_patterns.hpp"

namespace {

using namespace pprophet;

// A CPU-burning annotated loop (real time, real clock): each iteration
// spins ~2 µs so annotation cost is a measurable but small fraction.
void annotated_program(int iters, volatile double* sink) {
  PAR_SEC_BEGIN("loop");
  for (int i = 0; i < iters; ++i) {
    PAR_TASK_BEGIN("t");
    double acc = 1.0;
    for (int k = 0; k < 600; ++k) acc = acc * 1.0000001 + 0.5;
    *sink = acc;
    LOCK_BEGIN(1);
    for (int k = 0; k < 60; ++k) acc += k;
    *sink = acc;
    LOCK_END(1);
    PAR_TASK_END();
  }
  PAR_SEC_END(true);
}

void BM_AnnotatedBaseline(benchmark::State& state) {
  volatile double sink = 0;
  for (auto _ : state) {
    annotated_program(static_cast<int>(state.range(0)), &sink);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AnnotatedBaseline)->Arg(1000);

void BM_IntervalProfiling(benchmark::State& state) {
  volatile double sink = 0;
  trace::SteadyClock clock;
  for (auto _ : state) {
    trace::IntervalProfiler profiler(clock);
    {
      annotate::ScopedAnnotationTarget scope(profiler);
      annotated_program(static_cast<int>(state.range(0)), &sink);
    }
    benchmark::DoNotOptimize(profiler.finish());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IntervalProfiling)->Arg(1000);

void BM_ProfilingWithOnlineCompression(benchmark::State& state) {
  volatile double sink = 0;
  trace::SteadyClock clock;
  trace::ProfilerOptions opts;
  opts.online_compression = true;
  for (auto _ : state) {
    trace::IntervalProfiler profiler(clock, nullptr, opts);
    {
      annotate::ScopedAnnotationTarget scope(profiler);
      annotated_program(static_cast<int>(state.range(0)), &sink);
    }
    benchmark::DoNotOptimize(profiler.finish());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ProfilingWithOnlineCompression)->Arg(1000);

const tree::ProgramTree& sample_tree() {
  static const tree::ProgramTree t = [] {
    workloads::Test2Params p;
    p.k_max = 16;
    p.inner.i_max = 16;
    return workloads::run_test2(p);
  }();
  return t;
}

void BM_EstimateFf(benchmark::State& state) {
  const auto o = [] {
    auto opt = report::paper_options(core::Method::FastForward);
    return opt;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::predict(sample_tree(), 8, o));
  }
}
BENCHMARK(BM_EstimateFf);

void BM_EstimateSynthesizer(benchmark::State& state) {
  const auto o = [] {
    auto opt = report::paper_options(core::Method::Synthesizer);
    return opt;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::predict(sample_tree(), 8, o));
  }
}
BENCHMARK(BM_EstimateSynthesizer);

void BM_EstimateSuitability(benchmark::State& state) {
  const auto o = [] {
    auto opt = report::paper_options(core::Method::Suitability);
    return opt;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::predict(sample_tree(), 8, o));
  }
}
BENCHMARK(BM_EstimateSuitability);

}  // namespace

BENCHMARK_MAIN();
