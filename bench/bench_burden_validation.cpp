// §VII-C burden-factor validation: "We also verified the burden factor
// prediction by using the microbenchmark used in Eqs. (6) and (7). In more
// than 300 samples that show speedup saturation, we were able to predict
// the speedups mostly within a 30% error bound."
//
// Reproduction: random memory-bound sections (random stall fraction,
// consistent traffic, random trip counts and imbalance) are emulated
// (a) on the ground-truth machine with dynamic DRAM contention and
// (b) by the burden-factor synthesizer; samples whose real speedup
// saturates are scored against the 30% bound.
#include <iostream>

#include "memmodel/burden.hpp"
#include "util/rng.hpp"
#include "memmodel/calibration.hpp"
#include "report/experiment.hpp"
#include "tree/builder.hpp"
#include "util/env.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pprophet;

namespace {

/// A random memory-bound parallel section with physically consistent
/// counters: stall fraction µ ⇒ traffic µ·(64 B / 200 cy) = µ·320 MB/s.
tree::ProgramTree random_memory_sample(util::Xoshiro256& rng) {
  tree::TreeBuilder b;
  b.begin_sec("mem");
  const std::uint64_t iters = rng.uniform_u64(24, 96);
  const double spread = rng.uniform_double(0.0, 0.4);
  Cycles total = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    const auto len = static_cast<Cycles>(
        20'000.0 * (1.0 + spread * (2.0 * rng.uniform_double() - 1.0)));
    b.begin_task("t").u(len).end_task();
    total += len;
  }
  const double mu = rng.uniform_double(0.3, 0.95);  // memory-stall share
  tree::SectionCounters c;
  c.cycles = total;
  c.llc_misses = static_cast<std::uint64_t>(
      mu * static_cast<double>(total) / 200.0);
  // Instruction count such that MPI clears the model's floor and CPI is
  // plausible for a stall-heavy loop.
  c.instructions = static_cast<std::uint64_t>(
      static_cast<double>(total) / rng.uniform_double(1.2, 4.0));
  b.counters(c);
  b.end_sec();
  return b.finish();
}

}  // namespace

int main() {
  const long samples = util::env_long("PP_SAMPLES", 300);
  report::print_header(
      std::cout,
      "SS VII-C burden-factor validation (" + std::to_string(samples) +
          " samples; paper: saturated samples 'mostly within a 30% error "
          "bound')");

  memmodel::CalibrationOptions copts;
  copts.machine = report::paper_machine();
  const memmodel::BurdenModel model(memmodel::calibrate(copts));

  util::Xoshiro256 rng(0xBEEF);
  const CoreCount counts[] = {4, 8, 12};
  std::vector<double> pred, real;
  long saturated = 0, saturated_within_30 = 0;
  for (long s = 0; s < samples; ++s) {
    tree::ProgramTree t = random_memory_sample(rng);
    memmodel::annotate_burdens(t, model, counts);
    for (const CoreCount n : counts) {
      core::PredictOptions o =
          report::paper_options(core::Method::GroundTruth);
      const double r = core::predict(t, n, o).speedup;
      o.method = core::Method::Synthesizer;
      o.memory_model = true;
      const double p = core::predict(t, n, o).speedup;
      pred.push_back(p);
      real.push_back(r);
      if (r < 0.7 * static_cast<double>(n)) {  // "shows speedup saturation"
        ++saturated;
        if (util::relative_error(p, r) <= 0.30) ++saturated_within_30;
      }
    }
  }

  const util::ErrorStats es = util::error_stats(pred, real);
  util::Table table({"estimates", "avg err", "max err", "within 30%",
                     "saturated samples", "saturated within 30%"});
  table.add_row(
      {std::to_string(pred.size()), util::fmt_pct(es.mean_error),
       util::fmt_pct(es.max_error),
       util::fmt_pct(1.0 - static_cast<double>([&] {
                       long over = 0;
                       for (std::size_t i = 0; i < pred.size(); ++i) {
                         if (util::relative_error(pred[i], real[i]) > 0.30) {
                           ++over;
                         }
                       }
                       return over;
                     }()) /
                               static_cast<double>(pred.size())),
       std::to_string(saturated),
       saturated == 0
           ? "-"
           : util::fmt_pct(static_cast<double>(saturated_within_30) /
                           static_cast<double>(saturated))});
  table.print(std::cout);
  report::print_validation_panel(std::cout,
                                 "burden-factor predictions vs machine",
                                 pred, real);
  return 0;
}
