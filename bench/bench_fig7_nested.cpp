// Figure 7 reproduction: the two-level nested parallel loop where the FF
// (and Suitability) predict 1.5 while the real machine reaches 2.0 because
// the OS time-slices the oversubscribed nested teams. The synthesizer runs
// the generated program on the (simulated) machine and recovers ~2.0.
#include <iostream>

#include "report/experiment.hpp"
#include "tree/builder.hpp"
#include "util/table.hpp"

using namespace pprophet;

int main() {
  report::print_header(
      std::cout,
      "Figure 7 — nested loops: FF/Suitability mispredict, synthesizer "
      "recovers the real 2.0x");

  const Cycles k = 10'000;
  tree::TreeBuilder b;
  b.begin_sec("Loop1");
  b.begin_task("i0");
  b.begin_sec("LoopA");
  b.begin_task("a0").u(10 * k).end_task();
  b.begin_task("a1").u(5 * k).end_task();
  b.end_sec();
  b.end_task();
  b.begin_task("i1");
  b.begin_sec("LoopB");
  b.begin_task("b0").u(5 * k).end_task();
  b.begin_task("b1").u(10 * k).end_task();
  b.end_sec();
  b.end_task();
  b.end_sec();
  const tree::ProgramTree t = b.finish();

  core::PredictOptions o = report::paper_options(core::Method::GroundTruth);
  o.machine.cores = 2;
  o.machine.quantum = k / 10;
  o.machine.context_switch = 0;
  o.omp_overheads = runtime::OmpOverheads{0, 0, 0, 0, 0, 0, 0};
  o.synth_overheads = runtime::SynthOverheads{0, 0};

  util::Table table({"method", "predicted speedup", "paper"});
  const struct {
    core::Method m;
    const char* paper;
  } rows[] = {
      {core::Method::GroundTruth, "2.0 (real)"},
      {core::Method::FastForward, "1.5"},
      {core::Method::Suitability, "1.5 (same failure)"},
      {core::Method::Synthesizer, "~2.0"},
  };
  for (const auto& row : rows) {
    o.method = row.m;
    const double s = core::predict(t, 2, o).speedup;
    table.add_row({core::to_string(row.m), util::fmt_f(s, 2), row.paper});
  }
  table.print(std::cout);
  std::cout
      << "\nThe FF assigns whole nodes to virtual CPUs round-robin from the\n"
         "spawning CPU and never preempts, so both 10k-cycle nested\n"
         "iterations land on the same CPU (30k/20k = 1.5). The machine's\n"
         "preemptive scheduler time-slices the four oversubscribed threads\n"
         "(30k/~15k ~= 2.0), and the synthesizer inherits that behaviour\n"
         "by construction (paper SS IV-D/IV-E).\n";
  return 0;
}
