// Table IV reproduction: expected-speedup classification by memory
// behaviour. Prints the full matrix, then classifies each suite benchmark's
// hottest section from its *serial* counters and compares the verdict with
// its measured 12-core ground-truth speedup.
#include <iostream>

#include "kernel_suite.hpp"
#include "memmodel/classify.hpp"
#include "memmodel/mpi_trend.hpp"
#include "util/table.hpp"

using namespace pprophet;

int main() {
  report::print_header(std::cout, "Table IV — memory-behaviour classification");

  {
    util::Table matrix({"MPI trend \\ traffic", "Low", "Moderate", "Heavy"});
    for (const auto trend :
         {memmodel::MpiTrend::ParallelHigher, memmodel::MpiTrend::Unchanged,
          memmodel::MpiTrend::ParallelLower}) {
      std::vector<std::string> row{memmodel::to_string(trend)};
      for (const auto level :
           {memmodel::TrafficLevel::Low, memmodel::TrafficLevel::Moderate,
            memmodel::TrafficLevel::Heavy}) {
        row.push_back(memmodel::to_string(memmodel::classify(trend, level)));
      }
      matrix.add_row(std::move(row));
    }
    matrix.print(std::cout);
    std::cout << "(lightweight profiling observes only the middle row — the\n"
                 "others need parallel-MPI knowledge, future work in the "
                 "paper)\n";
  }

  std::cout << "\nClassification of the benchmark suite (hottest section):\n";
  const auto& model = bench::paper_burden_model();
  util::Table table({"benchmark", "traffic", "class", "beta_12",
                     "real 12-core speedup"});
  for (const auto& entry : bench::paper_suite(1)) {
    const bench::KernelCurves c = bench::evaluate_kernel(entry, model);
    const tree::SectionCounters* hottest = nullptr;
    for (const auto& child : c.tree.root->children()) {
      if (child->kind() != tree::NodeKind::Sec || !child->counters()) continue;
      if (hottest == nullptr || child->counters()->cycles > hottest->cycles) {
        hottest = child->counters();
      }
    }
    if (hottest == nullptr) continue;
    memmodel::ClassifyOptions opts;  // defaults match the paper machine
    const auto level = memmodel::traffic_level(*hottest, opts);
    const auto verdict = memmodel::classify_serial(*hottest, opts);
    double beta = 1.0;
    for (const auto& child : c.tree.root->children()) {
      if (child->kind() == tree::NodeKind::Sec) {
        beta = std::max(beta, child->burden(12));
      }
    }
    table.add_row({entry.name, memmodel::to_string(level),
                   memmodel::to_string(verdict), util::fmt_f(beta, 2),
                   util::fmt_f(c.real.back(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nExpectation: 'Scalable' rows reach high speedups; "
               "'Slowdown'/'Slowdown++' rows saturate early.\n";

  // Extension: the MPI-trend analyzer (memmodel/mpi_trend.hpp) covers the
  // rows the paper leaves to future work by replaying recorded access
  // traces through what-if cache configurations.
  std::cout << "\nMPI-trend estimation (the future-work rows), on probe "
               "loops:\n";
  {
    cachesim::CacheConfig tiny;
    tiny.l1 = {2 * 1024, 2};
    tiny.l2 = {4 * 1024, 4};
    tiny.llc = {16 * 1024, 4};
    memmodel::TrendOptions topts;
    topts.threads = 8;
    topts.sockets = 2;
    topts.cache = tiny;

    util::Table trends({"probe loop", "serial MPI", "parallel MPI (est.)",
                        "trend row"});
    const auto add_probe = [&](const char* name, auto&& body) {
      vcpu::VirtualCpu cpu(tiny);
      memmodel::MpiTrendAnalyzer analyzer(cpu, topts);
      analyzer.loop_begin();
      body(cpu, analyzer);
      const memmodel::TrendReport r = analyzer.loop_end();
      trends.add_row({name, util::fmt_f(r.serial_mpi, 4),
                      util::fmt_f(r.parallel_mpi, 4),
                      memmodel::to_string(r.trend(topts))});
    };
    add_probe("streaming (WS >> caches)", [](vcpu::VirtualCpu& cpu,
                                             memmodel::MpiTrendAnalyzer& a) {
      vcpu::InstrumentedArray<double> arr(cpu, 64 * 1024);
      for (std::uint64_t i = 0; i < arr.size(); ++i) {
        a.iteration(i / 512);
        arr.set(i, 1.0);
      }
    });
    add_probe("blocked reuse (WS ~ aggregate LLC)",
              [](vcpu::VirtualCpu& cpu, memmodel::MpiTrendAnalyzer& a) {
                vcpu::InstrumentedArray<double> arr(cpu, 3 * 1024);
                const std::uint64_t iters = 16;
                const std::size_t per = arr.size() / iters;
                for (int pass = 0; pass < 6; ++pass) {
                  for (std::uint64_t i = 0; i < iters; ++i) {
                    a.iteration(i);
                    for (std::size_t k = 0; k < per; ++k) {
                      arr.update(i * per + k, [](double v) { return v + 1; });
                    }
                  }
                }
              });
    add_probe("shared table scan (slices thrash)",
              [](vcpu::VirtualCpu& cpu, memmodel::MpiTrendAnalyzer& a) {
                vcpu::InstrumentedArray<double> table_arr(cpu, 1536);
                for (int pass = 0; pass < 8; ++pass) {
                  for (std::uint64_t i = 0; i < 32; ++i) {
                    a.iteration(i);
                    for (std::size_t k = 0; k < table_arr.size(); k += 8) {
                      (void)table_arr.get(k);
                    }
                  }
                }
              });
    trends.print(std::cout);
    std::cout << "With the trend row known, classify(trend, traffic) covers\n"
                 "all nine Table IV cells rather than just the middle row.\n";
  }
  return 0;
}
