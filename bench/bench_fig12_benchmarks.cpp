// Figure 12 reproduction: OmpSCR + NPB predictions — Real vs Pred (no
// memory model) vs PredM (with burden factors) vs Suit, across 2–12 cores.
//
// Expected shapes (paper):
//  * MD-OMP, LU-OMP, QSort-Cilk, NPB-EP: near-linear; Pred ≈ PredM ≈ Real
//    (burden factors are 1 for these);
//  * NPB-FT/CG/MG, FFT-Cilk: Real saturates from memory contention; Pred
//    overshoots; PredM tracks Real;
//  * Suit underestimates LU (inner-loop fork overestimate) and is
//    unreliable on the recursive Cilk benchmarks.
#include <iostream>

#include "kernel_suite.hpp"
#include "util/env.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace pprophet;

int main() {
  const long scale = util::env_long("PP_SCALE", 1);
  report::print_header(std::cout,
                       "Figure 12 — OmpSCR and NPB benchmark predictions "
                       "(PP_SCALE=" + std::to_string(scale) + ")");
  const auto& model = bench::paper_burden_model();
  const auto& cores = report::paper_core_counts();

  for (const auto& entry : bench::paper_suite(scale)) {
    const bench::KernelCurves curves = bench::evaluate_kernel(entry, model);
    std::vector<report::SpeedupSeries> series{
        {"Real", '#', curves.real},
        {"Pred", 'o', curves.pred},
        {"PredM", '*', curves.predm},
        {"Suit", 's', curves.suit},
    };
    report::print_speedup_panel(
        std::cout, curves.name + "  (" + entry.footprint_note + ")", cores,
        series);
    // Burden factors, as annotated on the top-level sections (max over
    // sections, like the paper quotes "1.0 to 1.45" for FT).
    double max_burden = 1.0;
    for (const auto& child : curves.tree.root->children()) {
      if (child->kind() == tree::NodeKind::Sec) {
        max_burden = std::max(max_burden, child->burden(12));
      }
    }
    std::cout << "max burden factor beta_12 = " << util::fmt_f(max_burden, 2)
              << "\n";
    const core::SweepStats& ss = curves.sweep_stats;
    std::cout << "sweep: " << ss.grid_points << " grid points, "
              << ss.section_evals << "/" << ss.section_lookups
              << " section emulations (memo hit rate "
              << util::fmt_pct(ss.hit_rate()) << "), "
              << util::fmt_f(ss.wall_ms, 1) << " ms\n";

    // Optional machine-readable export for replotting: PP_CSV_DIR=<dir>.
    if (const char* dir = std::getenv("PP_CSV_DIR")) {
      util::CsvWriter csv({"cores", "real", "pred", "predm", "suit"});
      for (std::size_t i = 0; i < cores.size(); ++i) {
        csv.add_row({std::to_string(cores[i]), util::fmt_f(curves.real[i], 4),
                     util::fmt_f(curves.pred[i], 4),
                     util::fmt_f(curves.predm[i], 4),
                     util::fmt_f(curves.suit[i], 4)});
      }
      const std::string path =
          std::string(dir) + "/fig12_" + curves.name + ".csv";
      if (csv.write(path)) {
        std::cout << "wrote " << path << "\n";
      } else {
        std::cerr << "could not write " << path << "\n";
      }
    }
  }
  return 0;
}
