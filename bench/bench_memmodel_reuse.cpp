// Reuse-distance memory model benchmark (docs/MEMMODEL.md): profile a
// kernel ONCE with the reuse collector, then price it on every machine
// preset two ways — the analytical miss model (reuse/miss_model.hpp) vs a
// full cache-simulation replay per preset. Reports, per preset, the
// model-vs-simulation MPI error, and the cost of the single collected pass
// (+ projections) against N replay passes. Gates both contracts in-process
// (≤10% relative MPI error on at least 3 of the 5 presets, ≥2x cost
// reduction) and exits nonzero on violation, so it doubles as a ctest
// (labels: perf, reuse).
// Writes BENCH_reuse.json. PP_SMOKE=1 shrinks the kernel; the gates still
// run.
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "machine/presets.hpp"
#include "report/experiment.hpp"
#include "reuse/miss_model.hpp"
#include "serve/json.hpp"
#include "util/env.hpp"
#include "util/table.hpp"
#include "workloads/ompscr.hpp"

using namespace pprophet;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct Mpi {
  std::uint64_t instructions = 0;
  std::uint64_t misses = 0;
  double value() const {
    return instructions == 0 ? 0.0
                             : static_cast<double>(misses) /
                                   static_cast<double>(instructions);
  }
};

Mpi section_mpi(const tree::ProgramTree& t) {
  Mpi m;
  for (const auto& c : t.root->children()) {
    if (c->kind() != tree::NodeKind::Sec) continue;
    if (const tree::SectionCounters* cnt = c->counters()) {
      m.instructions += cnt->instructions;
      m.misses += cnt->llc_misses;
    }
  }
  return m;
}

}  // namespace

int main() {
  const bool smoke = util::env_long("PP_SMOKE", 0) != 0;
  // Min-of-N for both the profiled pass and every replay: the cost
  // contract compares steady-state work, not scheduler noise.
  const long samples = util::env_long("PP_SAMPLES", 3);
  // Every preset runs a 64x-scaled hierarchy (MachinePreset::scaled_cache),
  // preserving each preset's footprint:LLC ratio at a feasible kernel size.
  const unsigned kShift = 6;
  workloads::JacobiParams params;
  params.n = smoke ? 96 : 160;
  params.sweeps = smoke ? 3 : 4;
  report::print_header(
      std::cout,
      "Reuse-distance model — one profiling pass vs per-machine replay "
      "(jacobi n=" + std::to_string(params.n) + ")" + (smoke ? " [smoke]" : ""));

  const auto& presets = machine::machine_presets();
  const machine::MachinePreset& home = presets.front();  // westmere

  // Untimed warm-up: the profiled pass runs first in-process and would
  // otherwise pay the allocator/page-fault cold start that the later
  // replay passes never see.
  {
    workloads::KernelConfig warm;
    warm.cache = home.scaled_cache(kShift);
    (void)workloads::run_jacobi(params, warm);
  }

  // One profiling pass on the home machine: cache simulation + reuse
  // collector in the same run.
  double profile_ms = 0.0;
  workloads::KernelRun profiled;
  for (long s = 0; s < samples; ++s) {
    workloads::KernelConfig cfg;
    cfg.cache = home.scaled_cache(kShift);
    cfg.cost.dram = home.cost.dram;
    cfg.collect_reuse = true;
    const auto t0 = std::chrono::steady_clock::now();
    workloads::KernelRun run = workloads::run_jacobi(params, cfg);
    const double ms = ms_since(t0);
    if (s == 0 || ms < profile_ms) profile_ms = ms;
    profiled = std::move(run);
  }

  // The replay baseline: what predicting every machine WITHOUT the model
  // costs — one full cache-simulated run per preset.
  util::Table table({"preset", "sim MPI", "model MPI", "rel err", "replay ms",
                     "project ms"});
  serve::JsonValue::Array rows;
  double replay_total_ms = 0.0;
  double project_total_ms = 0.0;
  std::size_t within_10pct = 0;
  for (const machine::MachinePreset& preset : presets) {
    double replay_ms = 0.0;
    Mpi sim;
    for (long s = 0; s < samples; ++s) {
      workloads::KernelConfig cfg;
      cfg.cache = preset.scaled_cache(kShift);
      cfg.cost.dram = preset.cost.dram;
      const auto t0 = std::chrono::steady_clock::now();
      const workloads::KernelRun run = workloads::run_jacobi(params, cfg);
      const double ms = ms_since(t0);
      if (s == 0 || ms < replay_ms) replay_ms = ms;
      sim = section_mpi(run.tree);
    }
    replay_total_ms += replay_ms;

    const auto t0 = std::chrono::steady_clock::now();
    tree::ProgramTree priced;
    priced.root = profiled.tree.root->clone();
    reuse::project_tree(priced, preset.scaled_cache(kShift), preset.cost.dram);
    const double project_ms = ms_since(t0);
    project_total_ms += project_ms;
    const Mpi model = section_mpi(priced);

    const double err = sim.value() > 0.0
                           ? std::abs(model.value() - sim.value()) / sim.value()
                           : 0.0;
    if (err <= 0.10) ++within_10pct;
    table.add_row({preset.name, util::fmt_f(sim.value() * 1000.0, 3) + "e-3",
                   util::fmt_f(model.value() * 1000.0, 3) + "e-3",
                   util::fmt_pct(err), util::fmt_f(replay_ms, 1),
                   util::fmt_f(project_ms, 2)});
    serve::JsonValue row;
    row.set("preset", serve::JsonValue(preset.name));
    row.set("sim_mpi", serve::JsonValue(sim.value()));
    row.set("model_mpi", serve::JsonValue(model.value()));
    row.set("rel_err", serve::JsonValue(err));
    row.set("within_10pct", serve::JsonValue(err <= 0.10));
    row.set("replay_ms", serve::JsonValue(replay_ms));
    row.set("project_ms", serve::JsonValue(project_ms));
    rows.push_back(std::move(row));
  }
  table.print(std::cout);

  // Cost contract: profiling once + projecting everywhere must beat running
  // the cache simulator once per machine by at least 2x.
  const double one_pass_ms = profile_ms + project_total_ms;
  const double reduction =
      one_pass_ms > 0.0 ? replay_total_ms / one_pass_ms : 0.0;
  std::cout << "one profiled pass " << util::fmt_f(profile_ms, 1) << " ms + "
            << util::fmt_f(project_total_ms, 2) << " ms of projections vs "
            << presets.size() << " replays " << util::fmt_f(replay_total_ms, 1)
            << " ms: " << util::fmt_f(reduction, 2) << "x cheaper\n";
  // Which presets sit in the well-modelled capacity regime (LLC clearly
  // below or clearly above the footprint) vs the conflict-dominated
  // mid-regime shifts with the kernel scale, so the gate counts presets
  // instead of naming them: the capacity regimes always cover at least 3
  // of the 5 (see tests/reuse/test_model_goldens.cpp for the per-preset
  // regime-split contract at a fixed scale).
  std::cout << within_10pct << "/" << presets.size()
            << " presets within the 10% MPI tolerance (gate: >= 3)\n";

  serve::JsonValue out;
  out.set("bench", serve::JsonValue("memmodel_reuse"));
  out.set("kernel", serve::JsonValue("jacobi"));
  out.set("n", serve::JsonValue(static_cast<std::uint64_t>(params.n)));
  out.set("sweeps", serve::JsonValue(static_cast<std::int64_t>(params.sweeps)));
  out.set("cache_shift", serve::JsonValue(static_cast<std::uint64_t>(kShift)));
  out.set("presets", serve::JsonValue(std::move(rows)));
  out.set("profile_ms", serve::JsonValue(profile_ms));
  out.set("project_total_ms", serve::JsonValue(project_total_ms));
  out.set("replay_total_ms", serve::JsonValue(replay_total_ms));
  out.set("cost_reduction", serve::JsonValue(reduction));
  out.set("presets_within_10pct",
          serve::JsonValue(static_cast<std::uint64_t>(within_10pct)));
  out.set("mpi_gate_ok", serve::JsonValue(within_10pct >= 3));
  out.set("reduction_at_least_2x", serve::JsonValue(reduction >= 2.0));
  std::ofstream f("BENCH_reuse.json");
  f << serve::json_dump(out) << "\n";
  f.close();
  std::cout << "wrote BENCH_reuse.json\n";

  if (within_10pct < 3) {
    std::cerr << "FAIL: model MPI within 10% on only " << within_10pct
              << " presets (need >= 3)\n";
    return 1;
  }
  if (reduction < 2.0) {
    std::cerr << "FAIL: one-pass profiling did not beat per-machine replay "
                 "2x (got " << util::fmt_f(reduction, 2) << "x)\n";
    return 1;
  }
  return 0;
}
