// Figure 2 reproduction: NPB-FT speedup saturation. The paper's headline
// motivating figure — the real speedup flattens around 4x as memory traffic
// saturates, while memory-blind predictors (Kismet/Suitability, and our
// Pred-without-memory-model) keep climbing. PredM follows the Real curve.
#include <iostream>

#include "kernel_suite.hpp"
#include "util/env.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pprophet;

int main() {
  report::print_header(std::cout,
                       "Figure 2 — NPB-FT: speedup saturation from memory "
                       "traffic (paper input B, 850 MB; scaled here)");
  const auto& model = bench::paper_burden_model();
  const auto suite = bench::paper_suite(util::env_long("PP_SCALE", 1));
  for (const auto& entry : suite) {
    if (entry.name != "NPB-FT") continue;
    const bench::KernelCurves c = bench::evaluate_kernel(entry, model);
    report::print_speedup_panel(
        std::cout, "NPB-FT  (Real vs memory-blind Pred vs PredM)",
        report::paper_core_counts(),
        {{"Real", '#', c.real}, {"Pred", 'o', c.pred}, {"PredM", '*', c.predm}});

    const util::ErrorStats blind = util::error_stats(c.pred, c.real);
    const util::ErrorStats with_model = util::error_stats(c.predm, c.real);
    std::cout << "\nprediction error vs Real:  memory-blind avg "
              << util::fmt_pct(blind.mean_error) << "  |  with burden model avg "
              << util::fmt_pct(with_model.mean_error) << "\n"
              << "The paper's point: without a memory model the 12-core\n"
                 "estimate overshoots badly; burden factors recover the\n"
                 "saturating shape.\n";
  }
  return 0;
}
