// Eq. (6)/(7) reproduction: the Ψ and Φ microbenchmark calibration.
// Runs the DRAM-traffic microbenchmark on the simulated machine, prints the
// measured samples, the fitted per-thread-count Ψ curves (linear vs log
// form with R², as the paper fits), and the fitted Φ power law next to the
// paper's ω = 101481·δ^-0.964.
#include <iostream>

#include "memmodel/calibration.hpp"
#include "report/experiment.hpp"
#include "util/table.hpp"

using namespace pprophet;

int main() {
  report::print_header(std::cout,
                       "Eq. 6/7 — Psi/Phi microbenchmark calibration on the "
                       "simulated machine");

  memmodel::CalibrationOptions opts;
  opts.machine = report::paper_machine();
  const memmodel::Calibration cal = memmodel::calibrate(opts);

  std::cout << "\nMicrobenchmark samples (achieved per-thread MB/s under t "
               "threads):\n";
  std::vector<std::string> sample_header{"demand MB/s"};
  for (const auto& fit : cal.psi_fits()) {
    sample_header.push_back("t=" + std::to_string(fit.threads));
  }
  util::Table samples(std::move(sample_header));
  for (std::size_t i = 0; i < opts.demand_levels.size(); ++i) {
    std::vector<std::string> row{util::fmt_f(opts.demand_levels[i], 0)};
    for (const auto& fit : cal.psi_fits()) {
      row.push_back(util::fmt_f(fit.samples[i].achieved, 1) + " (x" +
                    util::fmt_f(fit.samples[i].dilation, 2) + ")");
    }
    samples.add_row(std::move(row));
  }
  samples.print(std::cout);

  std::cout << "\nFitted Psi forms (paper Eq. 6: linear at t=2, a*ln+b "
               "beyond):\n";
  util::Table psi({"threads", "chosen form", "a", "b", "R^2"});
  for (const auto& fit : cal.psi_fits()) {
    if (fit.use_linear) {
      psi.add_row({std::to_string(fit.threads), "linear a*x+b",
                   util::fmt_f(fit.linear.a, 4), util::fmt_f(fit.linear.b, 1),
                   util::fmt_f(fit.linear.r2, 4)});
    } else {
      psi.add_row({std::to_string(fit.threads), "log a*ln(x)+b",
                   util::fmt_f(fit.log.a, 1), util::fmt_f(fit.log.b, 1),
                   util::fmt_f(fit.log.r2, 4)});
    }
  }
  psi.print(std::cout);

  const util::PowerFit& phi = cal.phi_fit();
  std::cout << "\nFitted Phi power law (paper Eq. 7: w = 101481 * d^-0.964 "
               "on their Xeon):\n"
            << "  w = " << util::fmt_f(phi.a, 1) << " * d^"
            << util::fmt_f(phi.b, 3) << "   (R^2 = " << util::fmt_f(phi.r2, 4)
            << ")\n"
            << "  contention floor: " << util::fmt_f(cal.contention_floor(), 0)
            << " MB/s aggregate; unloaded stall w = "
            << cal.unloaded_stall() << " cycles\n"
            << "\nThe exponent near -1 is the w*d conservation the paper's\n"
               "-0.964 approximates; absolute constants differ because the\n"
               "machines differ (theirs: real Westmere; ours: the simulated\n"
               "model at 1 GHz with 200-cycle blocking misses).\n";
  return 0;
}
