// Shared kernel-suite driver for the Figure 2/12 and Table I/III/IV
// benches: profiles each of the paper's eight benchmarks once, attaches
// burden factors, and predicts Real / Pred / PredM / Suit speedup curves.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "memmodel/burden.hpp"
#include "report/experiment.hpp"
#include "tree/compress.hpp"
#include "workloads/npb.hpp"
#include "workloads/ompscr.hpp"

namespace pprophet::bench {

struct SuiteEntry {
  std::string name;
  std::string footprint_note;
  core::Paradigm paradigm = core::Paradigm::OpenMP;
  runtime::OmpSchedule schedule = runtime::OmpSchedule::StaticBlock;
  std::function<workloads::KernelRun()> run;
};

/// The eight paper benchmarks at simulation-scaled sizes. `scale` ∈ {1, 2}
/// grows the problem sizes (PP_SCALE env in the benches).
std::vector<SuiteEntry> paper_suite(long scale = 1);

struct KernelCurves {
  std::string name;
  std::vector<double> real, pred, predm, suit;
  tree::ProgramTree tree;  ///< profiled + compressed + burden-annotated
  core::SweepStats sweep_stats;  ///< memo hit-rate / wall-clock of the sweep
};

/// Profiles the kernel and computes all four curves over the paper's core
/// counts, batched through the memoizing sweep engine (core/sweep.hpp).
/// The burden model must be calibrated against paper_machine().
KernelCurves evaluate_kernel(const SuiteEntry& entry,
                             const memmodel::BurdenModel& model);

/// Calibrates the memory model against the paper machine (cached across
/// calls within one process).
const memmodel::BurdenModel& paper_burden_model();

}  // namespace pprophet::bench
