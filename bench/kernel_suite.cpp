#include "kernel_suite.hpp"

#include "memmodel/calibration.hpp"

namespace pprophet::bench {

using workloads::KernelConfig;
using workloads::KernelRun;

std::vector<SuiteEntry> paper_suite(long scale) {
  const auto s = static_cast<std::size_t>(std::max(1L, scale));
  const KernelConfig plain{};                               // full cache
  const KernelConfig scaled{.cache = workloads::scaled_cache()};  // memory-bound

  std::vector<SuiteEntry> suite;
  suite.push_back({"MD-OMP", "8192/20MB in paper; scaled",
                   core::Paradigm::OpenMP, runtime::OmpSchedule::StaticBlock,
                   [=] {
                     workloads::MdParams p;
                     p.particles = 160 * s;
                     p.steps = 2;
                     return workloads::run_md(p, plain);
                   }});
  suite.push_back({"LU-OMP", "3072/54MB in paper; scaled",
                   core::Paradigm::OpenMP, runtime::OmpSchedule::StaticCyclic,
                   [=] {
                     workloads::LuParams p;
                     p.n = 96 * s;
                     return workloads::run_lu(p, plain);
                   }});
  suite.push_back({"FFT-Cilk", "2048/118MB in paper; scaled",
                   core::Paradigm::CilkPlus, runtime::OmpSchedule::StaticBlock,
                   [=] {
                     workloads::FftParams p;
                     p.n = 2048 * s;
                     p.parallel_cutoff = 128;
                     return workloads::run_fft(p, scaled);
                   }});
  suite.push_back({"QSort-Cilk", "2048/4MB in paper; scaled",
                   core::Paradigm::CilkPlus, runtime::OmpSchedule::StaticBlock,
                   [=] {
                     workloads::QsortParams p;
                     p.n = 16384 * s;
                     p.parallel_cutoff = 512;
                     return workloads::run_qsort(p, plain);
                   }});
  suite.push_back({"NPB-EP", "B/7MB in paper; scaled",
                   core::Paradigm::OpenMP, runtime::OmpSchedule::StaticBlock,
                   [=] {
                     workloads::EpParams p;
                     p.log2_pairs = 13 + static_cast<int>(s);
                     p.blocks = 48;
                     return workloads::run_ep(p, plain);
                   }});
  suite.push_back({"NPB-FT", "B/850MB in paper; scaled cache",
                   core::Paradigm::OpenMP, runtime::OmpSchedule::StaticBlock,
                   [=] {
                     workloads::FtParams p;
                     p.nx = 64 * s;  // grid 4x the scaled LLC: class-B-like
                     p.ny = 32;
                     p.nz = 16;
                     p.iterations = 2;
                     return workloads::run_ft(p, scaled);
                   }});
  suite.push_back({"NPB-CG", "B/400MB in paper; scaled cache",
                   core::Paradigm::OpenMP, runtime::OmpSchedule::StaticBlock,
                   [=] {
                     workloads::CgParams p;
                     p.n = 1400 * s;
                     p.iterations = 6;
                     return workloads::run_cg(p, scaled);
                   }});
  suite.push_back({"NPB-MG", "B/470MB in paper; scaled cache",
                   core::Paradigm::OpenMP, runtime::OmpSchedule::StaticBlock,
                   [=] {
                     workloads::MgParams p;
                     p.n = 32 * s;
                     p.vcycles = 2;
                     return workloads::run_mg(p, scaled);
                   }});
  return suite;
}

const memmodel::BurdenModel& paper_burden_model() {
  static const memmodel::BurdenModel model = [] {
    memmodel::CalibrationOptions opts;
    opts.machine = report::paper_machine();
    return memmodel::BurdenModel(memmodel::calibrate(opts));
  }();
  return model;
}

KernelCurves evaluate_kernel(const SuiteEntry& entry,
                             const memmodel::BurdenModel& model) {
  KernelCurves out;
  out.name = entry.name;
  KernelRun run = entry.run();
  tree::compress(run.tree);  // the paper's pipeline always compresses
  const auto& cores = report::paper_core_counts();
  memmodel::annotate_burdens(run.tree, model, cores);

  // The Figure 12 point set is not a full Cartesian grid (Real, Pred,
  // PredM, Suit per core count), so hand the explicit list to the sweep
  // engine: one batched evaluation, memoized per section.
  std::vector<core::SweepPoint> points;
  points.reserve(cores.size() * 4);
  const auto add = [&](core::Method m, bool mm, CoreCount t) {
    core::SweepPoint p;
    p.method = m;
    p.paradigm = entry.paradigm;
    p.schedule = entry.schedule;
    p.threads = t;
    p.memory_model = mm;
    points.push_back(p);
  };
  for (const CoreCount t : cores) {
    add(core::Method::GroundTruth, false, t);
    add(core::Method::Synthesizer, false, t);
    add(core::Method::Synthesizer, true, t);
    add(core::Method::Suitability, false, t);
  }

  core::PredictOptions base =
      report::paper_options(core::Method::GroundTruth);
  base.paradigm = entry.paradigm;
  base.schedule = entry.schedule;
  const core::SweepResult res =
      core::sweep_points(run.tree, points, base);
  for (std::size_t i = 0; i < cores.size(); ++i) {
    out.real.push_back(res.cells[4 * i + 0].estimate.speedup);
    out.pred.push_back(res.cells[4 * i + 1].estimate.speedup);
    out.predm.push_back(res.cells[4 * i + 2].estimate.speedup);
    out.suit.push_back(res.cells[4 * i + 3].estimate.speedup);
  }
  out.sweep_stats = res.stats;
  out.tree = std::move(run.tree);
  return out;
}

}  // namespace pprophet::bench
