// Figure 11 reproduction: prediction-accuracy validation on randomly
// generated Test1/Test2 samples (paper: 300 samples per case; default here
// is smaller for wall-clock, override with PP_SAMPLES).
//
// Panels:
//   (a) Test1,  8 cores, FF      — paper: avg error < 4%
//   (b) Test1, 12 cores, FF      — paper: max error 23%
//   (c) Test2,  8 cores, FF      — paper: avg 7%
//   (d) Test2, 12 cores, FF      — paper: max 68%, static worst
//   (e) Test2, 12 cores, SYN     — paper: avg 3%, max 19%
//   (f) Test2,  4 cores, SUIT    — paper: poor (no schedule modelling)
//
// "Real" is the ground-truth DES run of the actual parallel structure.
#include <iostream>

#include "report/experiment.hpp"
#include "util/env.hpp"
#include "util/table.hpp"
#include "workloads/test_patterns.hpp"

using namespace pprophet;

namespace {

struct Panel {
  const char* name;
  bool test2 = false;
  CoreCount cores = 8;
  core::Method method = core::Method::FastForward;
  const char* paper_note;
};

struct ScheduleCase {
  const char* name;
  runtime::OmpSchedule sched;
};

const ScheduleCase kSchedules[] = {
    {"static,1", runtime::OmpSchedule::StaticCyclic},
    {"static", runtime::OmpSchedule::StaticBlock},
    {"dynamic,1", runtime::OmpSchedule::Dynamic},
};

}  // namespace

int main() {
  const long samples = util::env_long("PP_SAMPLES", 60);
  report::print_header(
      std::cout, "Figure 11 — validation on random Test1/Test2 samples (" +
                     std::to_string(samples) +
                     " samples/panel; PP_SAMPLES to change; paper used 300)");

  const Panel panels[] = {
      {"(a) Test1, 8-core, FF", false, 8, core::Method::FastForward,
       "paper: avg <4%"},
      {"(b) Test1, 12-core, FF", false, 12, core::Method::FastForward,
       "paper: avg <4%, max 23%"},
      {"(c) Test2, 8-core, FF", true, 8, core::Method::FastForward,
       "paper: avg 7%"},
      {"(d) Test2, 12-core, FF", true, 12, core::Method::FastForward,
       "paper: avg 7%, max 68%"},
      {"(e) Test2, 12-core, SYN", true, 12, core::Method::Synthesizer,
       "paper: avg 3%, max 19%"},
      {"(f) Test2, 4-core, SUIT", true, 4, core::Method::Suitability,
       "paper: poor"},
  };

  for (const Panel& panel : panels) {
    std::cout << "\n--- " << panel.name << "  [" << panel.paper_note
              << "] ---\n";
    std::vector<double> all_pred, all_real;
    util::Table per_sched({"schedule", "avg err", "max err", "within 20%"});
    for (const ScheduleCase& sc : kSchedules) {
      // Suitability has no schedule parameter (the paper's point); report
      // it against the dynamic,1 reality only.
      if (panel.method == core::Method::Suitability &&
          sc.sched != runtime::OmpSchedule::Dynamic) {
        continue;
      }
      util::Xoshiro256 rng(0xF16'11'000 + (panel.test2 ? 7 : 3));
      std::vector<double> pred, real;
      for (long s = 0; s < samples; ++s) {
        const tree::ProgramTree tree =
            panel.test2 ? workloads::run_test2(workloads::random_test2(rng))
                        : workloads::run_test1(workloads::random_test1(rng));
        core::PredictOptions o = report::paper_options(panel.method);
        o.schedule = sc.sched;
        const double p = core::predict(tree, panel.cores, o).speedup;
        o.method = core::Method::GroundTruth;
        const double r = core::predict(tree, panel.cores, o).speedup;
        pred.push_back(p);
        real.push_back(r);
      }
      const util::ErrorStats es = util::error_stats(pred, real);
      per_sched.add_row({sc.name, util::fmt_pct(es.mean_error),
                         util::fmt_pct(es.max_error),
                         util::fmt_pct(es.within_20pct)});
      all_pred.insert(all_pred.end(), pred.begin(), pred.end());
      all_real.insert(all_real.end(), real.begin(), real.end());
    }
    per_sched.print(std::cout);
    report::print_validation_panel(std::cout, std::string(panel.name),
                                   all_pred, all_real);
  }
  return 0;
}
